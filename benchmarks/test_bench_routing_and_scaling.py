"""E20/E21 — extensions: O1TURN routing and technology scaling."""

from __future__ import annotations

from conftest import FULL

from repro.analysis import e20_routing, e21_tech_scaling


def test_bench_o1turn_routing(benchmark, save_report):
    result = benchmark.pedantic(
        e20_routing,
        kwargs={"measure": 500 if FULL else 300},
        rounds=1,
        iterations=1,
    )
    save_report("E20_o1turn_routing", result.text)
    # At the highest (adversarial) load O1TURN must beat XY clearly.
    worst = result.data["runs"][-1]
    assert worst["o1turn"].average_latency < worst["xy"].average_latency
    # Both deliver the offered load below saturation.
    assert worst["o1turn"].delivered_count > 0


def test_bench_tech_scaling(benchmark, save_report):
    result = benchmark.pedantic(e21_tech_scaling, rounds=1, iterations=1)
    save_report("E21_tech_scaling", result.text)
    shares = [p["fs_datapath_share"] for p in result.data["points"]]
    savings = [p["srlr_saving"] for p in result.data["points"]]
    # Section I: the datapath share grows monotonically as CMOS scales...
    assert shares == sorted(shares)
    # ...and with it the SRLR's router-power leverage.
    assert savings == sorted(savings)
    assert shares[0] > 0.4  # the 45 nm point sits in the published band
