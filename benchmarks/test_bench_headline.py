"""E5 — Section IV headline: 4.1 Gb/s, 40.4 fJ/bit/mm, 6.83 Gb/s/um, BER.

Regenerates the measured operating point of the fabricated 1-bit 10 mm
link: maximum data rate, energy per bit, link power, bandwidth density
and the PRBS error-count BER measurement.
"""

from __future__ import annotations

import pytest

from conftest import BER_BITS

from repro.analysis import e5_headline


def test_bench_headline(benchmark, save_report):
    result = benchmark.pedantic(
        e5_headline, kwargs={"n_ber_bits": BER_BITS}, rounds=1, iterations=1
    )
    save_report("E5_headline", result.text)
    assert result.data["energy_report"].fj_per_bit_per_mm == pytest.approx(
        40.4, rel=0.15
    )
    assert result.data["energy_report"].bandwidth_density_gbps_per_um == pytest.approx(
        6.83, rel=1e-3
    )
    assert 4.1e9 <= result.data["max_rate"] <= 5.5e9
    assert result.data["ber"].errors == 0
    assert result.data["ber_extrapolated"] < 1e-6
