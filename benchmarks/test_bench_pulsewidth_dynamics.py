"""E2 — Eq. (1)/(2): per-stage pulse-width drift at skewed corners.

Regenerates the Section III-A analysis: with a single delay cell and an
uncompensated global corner, the output pulse widths shrink monotonically
along the link until transmission fails; the alternating design decays
more slowly.
"""

from __future__ import annotations

from repro.analysis import e2_pulse_width_dynamics


def test_bench_pulsewidth_dynamics(benchmark, save_report):
    result = benchmark.pedantic(
        e2_pulse_width_dynamics,
        kwargs={"corner_shifts": (0.0, 0.014, 0.016, 0.018)},
        rounds=1,
        iterations=1,
    )
    save_report("E2_pulsewidth_dynamics", result.text)
    # Eq. (1): monotone shrink for the single design at the +16 mV corner.
    widths = [w for w in result.data["profiles"][0.016]["single"] if w is not None]
    assert all(a >= b - 0.5 for a, b in zip(widths, widths[1:]))
    assert widths[0] - widths[-1] > 5.0
    # Alternating decays more slowly (its deepest surviving width is higher).
    alt = [w for w in result.data["profiles"][0.018]["alternating"] if w is not None]
    single = [w for w in result.data["profiles"][0.018]["single"] if w is not None]
    assert min(alt) > min(single)
