"""E7 — Table I: comparison of silicon-proven on-chip interconnects.

Regenerates the table with the paper's published rows plus the
reproduction's own measured "This Work" row.
"""

from __future__ import annotations

from repro.analysis import e7_table1


def test_bench_table1(benchmark, save_report):
    result = benchmark.pedantic(e7_table1, rounds=1, iterations=1)
    save_report("E7_table1", result.text)
    designs = result.data["designs"]
    assert len(designs) == 6  # 5 prior rows (kim has 2 points) + this work
    ours = designs[-1]
    assert ours.signaling == "single-ended"
    assert all(d.signaling == "fully differential" for d in designs[:-1])
    assert 300 < result.data["measured_energy_fj_per_bit_per_cm"] < 500
