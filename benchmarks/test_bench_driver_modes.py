"""E3 — Section III-B: inverter vs NMOS driver failure modes.

Regenerates the corner-plane failure maps: the inverter driver exhibits
two distinct, PMOS-corner-dependent failure modes; the NMOS-based driver
collapses to a single weak-NMOS band which the adaptive Vref then pushes
out.
"""

from __future__ import annotations

from repro.analysis import e3_driver_modes


def test_bench_driver_modes(benchmark, save_report):
    result = benchmark.pedantic(e3_driver_modes, rounds=1, iterations=1)
    save_report("E3_driver_modes", result.text)
    maps = result.data["maps"]
    # The NMOS driver's map is (nearly) dVth_p-independent: the residual
    # row variation comes from the shared INV/delay-cell blocks, not the
    # driver.  The inverter's map must vary more with dVth_p (its second,
    # PMOS-driven failure mode).
    n_nmos = len(set(maps["nmos (fixed Vref)"]))
    n_inverter = len(set(maps["inverter"]))
    assert n_nmos <= 2
    assert n_inverter >= n_nmos
    # Adaptive swing recovers corners the fixed reference loses.
    assert result.data["fail_counts"]["nmos + adaptive"] <= result.data[
        "fail_counts"
    ]["nmos (fixed Vref)"]
