"""E16/E17 — extensions: pipeline bypass and the parallel SRLR datapath."""

from __future__ import annotations

from conftest import FULL, NOC_MEASURE

from repro.analysis import e16_bypass, e17_bus


def test_bench_bypass(benchmark, save_report):
    result = benchmark.pedantic(
        e16_bypass, kwargs={"measure": NOC_MEASURE}, rounds=1, iterations=1
    )
    save_report("E16_bypass", result.text)
    for run in result.data["runs"]:
        assert run["latency_bypass"] < run["latency_base"]
        assert run["buffer_energy_bypass"] <= run["buffer_energy_base"]


def test_bench_bus(benchmark, save_report):
    result = benchmark.pedantic(
        e17_bus,
        kwargs={"n_bits": 16, "n_runs": 120 if FULL else 40},
        rounds=1,
        iterations=1,
    )
    save_report("E17_bus", result.text)
    assert result.data["tt"].ok
    report = result.data["yield"]
    # Correlated lanes: the measured bus failure probability sits at or
    # below the independent-lanes prediction.
    assert report.bus_failure_probability <= report.independence_prediction + 1e-9
    if result.data["skews"]:
        assert max(result.data["skews"]) < 1.0 / 4.1e9  # within one UI
