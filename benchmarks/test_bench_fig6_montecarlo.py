"""E4 — Fig. 6: Monte Carlo error probability vs swing voltage.

Regenerates the paper's 1000-run Monte Carlo comparison of the robust and
straightforward SRLR designs across swing voltages, including the ~3.7x
process-variation-immunity ratio at the selected swing.
"""

from __future__ import annotations

from conftest import FIG6_SWINGS, MC_RUNS

from repro.analysis import e4_fig6_montecarlo


def test_bench_fig6_montecarlo(benchmark, save_report):
    result = benchmark.pedantic(
        e4_fig6_montecarlo,
        kwargs={"swings": FIG6_SWINGS, "n_runs": MC_RUNS},
        rounds=1,
        iterations=1,
    )
    save_report("E4_fig6_montecarlo", result.text)
    sweep = result.data["sweep"]
    robust = sweep.series("robust")
    straightforward = sweep.series("straightforward")
    # Error probability falls with swing (both designs).
    assert robust[-1] <= robust[0]
    # The robust design is never less reliable, and is strictly better at
    # the selected swing by a factor in the paper's band.
    assert all(r <= s + 1e-9 for r, s in zip(robust, straightforward))
    assert 2.0 <= result.data["immunity_ratio"] <= 8.0
