"""E8 — Section IV: bias generator overhead (587 uW, 0.6% at 64 bits)."""

from __future__ import annotations

import pytest

from repro.analysis import e8_bias_overhead


def test_bench_bias_overhead(benchmark, save_report):
    result = benchmark.pedantic(e8_bias_overhead, rounds=1, iterations=1)
    save_report("E8_bias_overhead", result.text)
    assert result.data["fraction_64"] == pytest.approx(0.006, abs=0.003)
