"""E15 — extension: crosstalk robustness of the single-ended SRLR wires.

The paper's density/energy trade (Fig. 8) gains a robustness axis: the
exact coupled-line model quantifies neighbor noise and the dynamic Miller
swing loss against the stage's sensing margin, across wire spacings.
"""

from __future__ import annotations

from repro.analysis import e15_crosstalk


def test_bench_crosstalk(benchmark, save_report):
    result = benchmark.pedantic(e15_crosstalk, rounds=1, iterations=1)
    save_report("E15_crosstalk", result.text)
    points = {p["space_scale"]: p for p in result.data["points"]}
    # Noise and Miller loss grow monotonically as spacing tightens.
    scales = sorted(points)
    noises = [points[s]["noise"] for s in scales]
    assert noises == sorted(noises, reverse=True)
    # The paper's reference spacing holds its margins; half-spacing breaks.
    assert points[1.0]["ok"]
    assert not points[0.6]["ok"]
