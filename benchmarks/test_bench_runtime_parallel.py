"""Runtime — parallel Monte Carlo execution on the Fig. 6 workload.

Times the Fig. 6 Monte Carlo block (the repo's hottest path) on the
serial reference and on the parallel runtime, proves the results are
bitwise identical, and records the wall-clock speedup under
``benchmarks/output/``.  The >= 2x speedup assertion only arms on
machines with enough cores (a single-core CI box cannot speed anything
up; the parity assertions always run).
"""

from __future__ import annotations

import os
import time

from conftest import MC_RUNS

from repro.circuit import robust_design
from repro.mc import run_monte_carlo
from repro.runtime import ParallelExecutor

PARALLEL_JOBS = 4
#: Cores needed before the 2x-speedup acceptance assertion arms.
MIN_CORES_FOR_SPEEDUP = 4


def test_bench_runtime_parallel(benchmark, save_report):
    design = robust_design()
    # Warm the per-process model caches so the serial timing is honest.
    run_monte_carlo(design, n_runs=2)

    t0 = time.perf_counter()
    serial = run_monte_carlo(design, n_runs=MC_RUNS, n_jobs=1)
    serial_s = time.perf_counter() - t0

    executor = ParallelExecutor(n_jobs=PARALLEL_JOBS)
    t0 = time.perf_counter()
    parallel = benchmark.pedantic(
        run_monte_carlo,
        kwargs={"design": design, "n_runs": MC_RUNS, "executor": executor},
        rounds=1,
        iterations=1,
    )
    parallel_s = time.perf_counter() - t0

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    metrics = executor.last_metrics
    cores = os.cpu_count() or 1
    lines = [
        f"Runtime — parallel Monte Carlo ({MC_RUNS} dies, Fig. 6 workload)",
        f"host cores                 : {cores}",
        f"serial (n_jobs=1) wall [s] : {serial_s:.2f}",
        f"parallel (n_jobs={PARALLEL_JOBS}) wall [s]: {parallel_s:.2f}",
        f"speedup                    : {speedup:.2f}x",
        f"parallel backend           : {metrics.backend}",
        f"throughput [dies/s]        : {metrics.throughput:.1f}",
        f"chunks                     : {len(metrics.chunks)}",
        f"task failures              : {metrics.failed_tasks}",
        f"bitwise parity             : {parallel.runs == serial.runs}",
    ]
    save_report("E23_runtime_parallel", "\n".join(lines))

    # Parity is unconditional: identical McRun lists, any worker count.
    assert parallel.runs == serial.runs
    assert parallel.error_probability == serial.error_probability
    assert metrics.failed_tasks == 0
    assert metrics.completed_tasks == MC_RUNS
    # The acceptance speedup (>= 2x with 4 workers) needs real cores.
    if cores >= MIN_CORES_FOR_SPEEDUP:
        assert metrics.backend == "process"
        assert speedup >= 2.0, f"expected >= 2x on {cores} cores, got {speedup:.2f}x"
