"""E12 — ablation: decomposing the robust design's Fig. 6 advantage.

Each of the three Section III techniques (alternating delay cells,
NMOS-based driver, adaptive swing) is toggled independently and Monte
Carlo'd at the selected swing.
"""

from __future__ import annotations

from conftest import MC_RUNS

from repro.analysis import e12_ablation


def test_bench_ablation_robustness(benchmark, save_report):
    result = benchmark.pedantic(
        e12_ablation, kwargs={"n_runs": MC_RUNS}, rounds=1, iterations=1
    )
    save_report("E12_ablation_robustness", result.text)
    res = result.data["results"]
    p = {k: v.error_probability for k, v in res.items()}
    # The full robust design beats the straightforward baseline...
    assert p["robust"] < p["straightforward"]
    # ...and removing the adaptive swing hurts the most (our model's
    # decomposition of the 3.7x, recorded in EXPERIMENTS.md).
    assert p["no_adaptive"] > p["robust"]
    assert 2.0 <= result.data["immunity_ratio"] <= 8.0
