"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures (see the
per-experiment index in DESIGN.md), prints the reproduced rows/series,
and saves them under ``benchmarks/output/``.  ``pytest-benchmark`` wraps
the computation so the harness also reports how long each reproduction
takes.

Set ``REPRO_FULL=1`` for publication-fidelity sizes (e.g. the paper's
full 1000-run Monte Carlo); the default sizes keep the whole suite to a
few minutes while preserving every qualitative result.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"

FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: Monte Carlo dies per design point (paper: 1000).
MC_RUNS = 1000 if FULL else 250
#: Swing points for the Fig. 6 sweep.
FIG6_SWINGS = (0.27, 0.285, 0.30, 0.315, 0.33) if FULL else (0.28, 0.30, 0.32)
#: BER measurement length.
BER_BITS = 500_000 if FULL else 30_000
#: NoC measurement window.
NOC_MEASURE = 1500 if FULL else 400


@pytest.fixture(scope="session")
def save_report():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
