"""E6 — Fig. 8: 1 cm link-traversal energy vs bandwidth density.

Regenerates the comparison plane: prior silicon-proven interconnects'
published points with pitch-swept curves, plus this work's point from our
own circuit-level energy measurement.
"""

from __future__ import annotations

from repro.analysis import e6_fig8_energy_density


def test_bench_fig8_energy_density(benchmark, save_report):
    result = benchmark.pedantic(e6_fig8_energy_density, rounds=1, iterations=1)
    save_report("E6_fig8_energy_density", result.text)
    assert result.data["on_pareto_frontier"]
    assert result.data["highest_density"]
    assert result.data["beats_high_density_rivals"]
    # Every curve rises with density (the Table I footnote's coupling trade).
    for key, curve in result.data["curves"].items():
        energies = [e for _, e in curve]
        assert energies == sorted(energies), key
