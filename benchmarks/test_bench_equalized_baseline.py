"""E22 — extension: repeaterless/equalized links vs repeating, simulated."""

from __future__ import annotations

from repro.analysis import e22_equalized_baseline


def test_bench_equalized_baseline(benchmark, save_report):
    result = benchmark.pedantic(e22_equalized_baseline, rounds=1, iterations=1)
    save_report("E22_equalized_baseline", result.text)
    points = result.data["points"]
    rates = [p["rate"] for p in points]
    energies = [p["energy"] for p in points]
    # More equalization -> more rate AND more energy (the FFE trade).
    assert rates == sorted(rates)
    assert energies == sorted(energies)
    # The repeated SRLR link beats every repeaterless variant on both axes.
    assert result.data["srlr_rate"] > max(rates) * 3
    assert result.data["srlr_energy"] < min(energies)
