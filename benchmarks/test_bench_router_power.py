"""E9 — Section IV: router power split (38.8/5.2/12.9 mW) and area (18%)."""

from __future__ import annotations

import pytest

from repro.analysis import e9_router_power


def test_bench_router_power(benchmark, save_report):
    result = benchmark.pedantic(e9_router_power, rounds=1, iterations=1)
    save_report("E9_router_power", result.text)
    power = result.data["power_srlr"]
    assert power.buffers == pytest.approx(38.8e-3, rel=0.1)
    assert power.control == pytest.approx(5.2e-3, rel=0.1)
    assert power.datapath == pytest.approx(12.9e-3, rel=0.1)
    area = result.data["area"]
    assert area.datapath * 1e6 == pytest.approx(0.061, rel=0.02)
    assert area.datapath_fraction == pytest.approx(0.18, abs=0.03)
