"""Mesh topology and XY / multicast-tree routing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, RoutingError
from repro.noc import (
    MeshTopology,
    OPPOSITE,
    Port,
    multicast_tree_links,
    route_ports,
    tap_destinations,
    unicast_path_hops,
    xy_route,
)
from repro.noc.packet import Packet

K = 4
TOPO = MeshTopology(K)


def _flit(src, dests):
    return Packet(src=src, dests=frozenset(dests), size_flits=1, inject_cycle=0).flits()[0]


nodes = st.tuples(st.integers(0, K - 1), st.integers(0, K - 1))


# --- topology ---------------------------------------------------------------------------


def test_mesh_counts():
    assert TOPO.n_nodes == 16
    assert len(TOPO.nodes()) == 16
    # Directed links: 2 * 2 * k * (k-1).
    assert len(TOPO.links()) == 2 * 2 * K * (K - 1)


def test_neighbors_and_edges():
    assert TOPO.neighbor((0, 0), Port.EAST) == (1, 0)
    assert TOPO.neighbor((0, 0), Port.NORTH) == (0, 1)
    assert TOPO.neighbor((0, 0), Port.WEST) is None
    assert TOPO.neighbor((0, 0), Port.SOUTH) is None
    assert TOPO.neighbor((K - 1, K - 1), Port.EAST) is None
    assert TOPO.neighbor((1, 1), Port.LOCAL) is None


def test_opposite_ports():
    for port, opp in OPPOSITE.items():
        assert OPPOSITE[opp] == port


def test_hop_distance_is_manhattan():
    assert TOPO.hop_distance((0, 0), (3, 2)) == 5
    assert TOPO.hop_distance((2, 2), (2, 2)) == 0


def test_invalid_mesh_and_nodes():
    with pytest.raises(ConfigurationError):
        MeshTopology(1)
    with pytest.raises(ConfigurationError):
        TOPO.neighbor((9, 9), Port.EAST)
    with pytest.raises(ConfigurationError):
        TOPO.hop_distance((0, 0), (9, 9))


# --- XY routing ------------------------------------------------------------------------


def test_xy_routes_x_first():
    assert xy_route((0, 0), (2, 2)) == Port.EAST
    assert xy_route((2, 0), (2, 2)) == Port.NORTH
    assert xy_route((2, 2), (0, 2)) == Port.WEST
    assert xy_route((2, 2), (2, 0)) == Port.SOUTH
    assert xy_route((1, 1), (1, 1)) == Port.LOCAL


@settings(max_examples=60)
@given(src=nodes, dest=nodes)
def test_xy_always_reaches_destination(src, dest):
    node, hops = src, 0
    while node != dest:
        port = xy_route(node, dest)
        node = TOPO.neighbor(node, port)
        assert node is not None
        hops += 1
        assert hops <= 2 * K  # no loops
    assert hops == TOPO.hop_distance(src, dest)


def test_route_ports_partition():
    flit = _flit((1, 1), {(3, 1), (0, 1), (1, 3)})
    partition = route_ports(TOPO, (1, 1), flit)
    assert partition[Port.EAST] == frozenset({(3, 1)})
    assert partition[Port.WEST] == frozenset({(0, 1)})
    assert partition[Port.NORTH] == frozenset({(1, 3)})


def test_route_ports_includes_local():
    flit = _flit((0, 0), {(1, 1), (2, 0)})
    partition = route_ports(TOPO, (1, 1), flit)
    assert Port.LOCAL in partition


@settings(max_examples=40)
@given(src=nodes, dest=nodes)
def test_route_ports_covers_all_destinations(src, dest):
    if src == dest:
        return
    flit = _flit(src, {dest})
    partition = route_ports(TOPO, src, flit)
    covered = frozenset().union(*partition.values())
    assert covered == flit.dests


def test_route_ports_rejects_outside_mesh():
    flit = _flit((0, 0), {(9, 9)})
    with pytest.raises(RoutingError):
        route_ports(TOPO, (0, 0), flit)


# --- multicast tree ---------------------------------------------------------------------


def test_tree_matches_unicast_for_single_dest():
    tree = multicast_tree_links(TOPO, (0, 0), frozenset({(2, 2)}))
    assert len(tree) == unicast_path_hops(TOPO, (0, 0), (2, 2))


def test_tree_shares_common_prefix():
    dests = frozenset({(3, 0), (3, 1)})
    tree = multicast_tree_links(TOPO, (0, 0), dests)
    total_unicast = sum(unicast_path_hops(TOPO, (0, 0), d) for d in dests)
    assert len(tree) == 4  # 3 east + 1 north
    assert len(tree) < total_unicast  # 3 + 4 = 7 as unicasts


@settings(max_examples=30)
@given(
    src=nodes,
    dests=st.sets(nodes, min_size=1, max_size=6),
)
def test_tree_never_worse_than_unicasts(src, dests):
    dests = frozenset(d for d in dests if d != src)
    if not dests:
        return
    tree = multicast_tree_links(TOPO, src, dests)
    total = sum(unicast_path_hops(TOPO, src, d) for d in dests)
    longest = max(unicast_path_hops(TOPO, src, d) for d in dests)
    assert longest <= len(tree) <= total


def test_taps_on_a_straight_line():
    # Destinations in a row: all but the last are straight-through taps.
    dests = frozenset({(1, 0), (2, 0), (3, 0)})
    taps = tap_destinations(TOPO, (0, 0), dests)
    assert taps == frozenset({(1, 0), (2, 0)})


def test_turn_point_is_not_a_tap():
    # (2,0) is where the tree turns north: not a straight-through tap.
    dests = frozenset({(2, 0), (2, 2)})
    taps = tap_destinations(TOPO, (0, 0), dests)
    assert (2, 0) not in taps


def test_leaf_is_not_a_tap():
    taps = tap_destinations(TOPO, (0, 0), frozenset({(3, 3)}))
    assert taps == frozenset()
