"""Crash-safe checkpoint/resume across every campaign type.

The acceptance property from docs/RESILIENCE.md: a campaign killed at
any instant and resumed from its checkpoint produces results **bitwise
identical** to an uninterrupted run — for Monte Carlo, 1-D sweeps, grid
sweeps and fault campaigns — while recomputing only the missing work.
Plus the store-level guarantees: torn-tail truncation, config-mismatch
refusal, and exact float round-trips.
"""

from __future__ import annotations

import functools
import json
import math
from pathlib import Path

import pytest

from repro.analysis.sweep import sweep, sweep_grid
from repro.circuit.srlr import robust_design
from repro.errors import CheckpointError
from repro.fault import FaultCampaignConfig, run_fault_campaign
from repro.mc.engine import run_monte_carlo
from repro.runtime import (
    CheckpointStore,
    ParallelExecutor,
    ResilienceConfig,
    callable_token,
)

N_RUNS = 24


# --- CheckpointStore unit behavior -----------------------------------------------------


def test_roundtrip_preserves_floats_exactly(tmp_path):
    path = tmp_path / "store.jsonl"
    values = [0.1 + 0.2, 1e-308, -0.0, 123456789.123456789, float("inf")]
    with CheckpointStore(path) as store:
        store.begin({"kind": "t"})
        for i, v in enumerate(values):
            store.append(str(i), {"v": v})
    fresh = CheckpointStore(path)
    fresh.load()
    got = [fresh.get(str(i))["v"] for i in range(len(values))]
    assert all(a == b for a, b in zip(got, values))
    assert math.copysign(1.0, got[2]) == -1.0  # -0.0 survives


def test_torn_final_line_dropped_and_truncated(tmp_path):
    path = tmp_path / "store.jsonl"
    with CheckpointStore(path) as store:
        store.begin({"kind": "t"})
        store.append("a", {"v": 1})
        store.append("b", {"v": 2})
    good_size = path.stat().st_size
    with open(path, "ab") as fh:
        fh.write(b'{"kind": "record", "key": "c", "pay')  # no newline: torn

    resumed = CheckpointStore(path)
    resumed.begin({"kind": "t"}, resume=True)
    assert set(resumed.keys()) == {"a", "b"}
    resumed.append("c", {"v": 3})
    resumed.close()
    # The torn bytes are physically gone, replaced by the clean append.
    lines = path.read_bytes().decode().splitlines()
    assert len(lines) == 4  # header + a + b + c
    assert json.loads(lines[-1])["key"] == "c"
    assert path.stat().st_size > good_size


def test_mid_file_corruption_drops_untrusted_tail_with_warning(tmp_path):
    path = tmp_path / "store.jsonl"
    with CheckpointStore(path) as store:
        store.begin({"kind": "t"})
        for key in "abcd":
            store.append(key, {"v": key})
    lines = path.read_bytes().splitlines(keepends=True)
    lines[2] = b"NOT JSON AT ALL\n"  # corrupt record "b"
    path.write_bytes(b"".join(lines))
    fresh = CheckpointStore(path)
    with pytest.warns(RuntimeWarning, match="corrupt record on line 3"):
        fresh.load()
    assert set(fresh.keys()) == {"a"}  # b, c, d all dropped


def test_existing_store_requires_resume_flag(tmp_path):
    path = tmp_path / "store.jsonl"
    with CheckpointStore(path) as store:
        store.begin({"kind": "t"})
    with pytest.raises(CheckpointError, match="pass resume=True"):
        CheckpointStore(path).begin({"kind": "t"})


def test_config_mismatch_refused(tmp_path):
    path = tmp_path / "store.jsonl"
    with CheckpointStore(path) as store:
        store.begin({"kind": "t", "n": 1})
    with pytest.raises(CheckpointError, match="different run configuration"):
        CheckpointStore(path).begin({"kind": "t", "n": 2}, resume=True)


def test_append_is_idempotent_per_key(tmp_path):
    path = tmp_path / "store.jsonl"
    with CheckpointStore(path) as store:
        store.begin({"kind": "t"})
        store.append("a", {"v": 1})
        store.append("a", {"v": 999})  # ignored: first write wins
        assert store.get("a") == {"v": 1}
        assert len(store) == 1


def test_callable_token_distinguishes_functions_and_partials():
    t_sweep = callable_token(sweep)
    t_grid = callable_token(sweep_grid)
    assert t_sweep != t_grid
    p1 = callable_token(functools.partial(sweep, parameter="x"))
    p2 = callable_token(functools.partial(sweep, parameter="y"))
    assert p1 != p2
    assert callable_token(functools.partial(sweep, parameter="x")) == p1


# --- Monte Carlo ------------------------------------------------------------------------


@pytest.fixture(scope="module")
def mc_reference():
    return run_monte_carlo(robust_design(), n_runs=N_RUNS)


def _truncate_to_records(path: Path, n_keep: int) -> None:
    """Keep the header plus the first ``n_keep`` records (simulated kill)."""
    lines = path.read_bytes().splitlines(keepends=True)
    path.write_bytes(b"".join(lines[: 1 + n_keep]))


def test_mc_checkpointed_run_matches_plain(tmp_path, mc_reference):
    path = tmp_path / "mc.jsonl"
    result = run_monte_carlo(robust_design(), n_runs=N_RUNS, checkpoint=path)
    assert result.runs == mc_reference.runs


@pytest.mark.parametrize("resume_jobs", [1, 2])
def test_mc_interrupted_resume_is_bitwise_identical(
    tmp_path, mc_reference, resume_jobs
):
    path = tmp_path / f"mc-{resume_jobs}.jsonl"
    run_monte_carlo(robust_design(), n_runs=N_RUNS, checkpoint=path)
    _truncate_to_records(path, 7)  # "kill" with 7 of 24 dies durable

    resumed = run_monte_carlo(
        robust_design(),
        n_runs=N_RUNS,
        n_jobs=resume_jobs,
        checkpoint=path,
        resume=True,
    )
    assert resumed.runs == mc_reference.runs


def test_mc_keyboard_interrupt_then_resume(tmp_path, mc_reference):
    path = tmp_path / "mc-ki.jsonl"
    state = {"chunks": 0}

    def interrupt(metrics) -> None:
        state["chunks"] += 1
        if state["chunks"] >= 2:
            raise KeyboardInterrupt

    executor = ParallelExecutor(n_jobs=1, chunk_size=4, progress=interrupt)
    with pytest.raises(KeyboardInterrupt):
        run_monte_carlo(
            robust_design(), n_runs=N_RUNS, executor=executor, checkpoint=path
        )

    survivors = CheckpointStore(path)
    survivors.load()
    assert 0 < len(survivors) < N_RUNS

    resumed = run_monte_carlo(
        robust_design(), n_runs=N_RUNS, checkpoint=path, resume=True
    )
    assert resumed.runs == mc_reference.runs


def test_mc_complete_checkpoint_recomputes_nothing(tmp_path, mc_reference):
    path = tmp_path / "mc-done.jsonl"
    run_monte_carlo(robust_design(), n_runs=N_RUNS, checkpoint=path)

    executor = ParallelExecutor(n_jobs=1)
    replayed = run_monte_carlo(
        robust_design(),
        n_runs=N_RUNS,
        executor=executor,
        checkpoint=path,
        resume=True,
    )
    assert replayed.runs == mc_reference.runs
    assert executor.last_metrics is None  # map() never ran


def test_mc_different_campaign_refuses_store(tmp_path):
    path = tmp_path / "mc.jsonl"
    run_monte_carlo(robust_design(), n_runs=8, checkpoint=path)
    with pytest.raises(CheckpointError, match="different run configuration"):
        run_monte_carlo(
            robust_design(), n_runs=8, base_seed=999, checkpoint=path, resume=True
        )


# --- sweeps -----------------------------------------------------------------------------

SWEEP_VALUES = (0.26, 0.28, 0.30, 0.32)


def _sweep_eval(v: float) -> dict[str, float]:
    return {"square": v * v, "scaled": v * 3.7}


def _gated_eval(v: float, gate_dir: str = "") -> dict[str, float]:
    """Poison value fails until the gate file exists (resume testing)."""
    if v == SWEEP_VALUES[2] and not (Path(gate_dir) / "open").exists():
        raise RuntimeError("gate closed")
    return _sweep_eval(v)


def _grid_eval(point: dict) -> dict[str, float]:
    return {"product": point["a"] * point["b"]}


def test_sweep_interrupted_resume_is_bitwise_identical(tmp_path):
    reference = sweep("swing", SWEEP_VALUES, _sweep_eval)
    path = tmp_path / "sweep.jsonl"
    sweep("swing", SWEEP_VALUES, _sweep_eval, checkpoint=path)
    _truncate_to_records(path, 2)

    resumed = sweep(
        "swing", SWEEP_VALUES, _sweep_eval, checkpoint=path, resume=True
    )
    assert resumed == reference


def test_sweep_different_evaluator_refuses_store(tmp_path):
    path = tmp_path / "sweep.jsonl"
    sweep("swing", SWEEP_VALUES, _sweep_eval, checkpoint=path)
    with pytest.raises(CheckpointError, match="different run configuration"):
        sweep("swing", SWEEP_VALUES, _grid_eval, checkpoint=path, resume=True)


def test_sweep_quarantined_point_not_checkpointed_and_retried_on_resume(tmp_path):
    gate = tmp_path / "gate"
    gate.mkdir()
    evaluate = functools.partial(_gated_eval, gate_dir=str(gate))
    path = tmp_path / "sweep.jsonl"

    config = ResilienceConfig(max_retries=0, backoff_base=0.0)
    broken = sweep(
        "swing", SWEEP_VALUES, evaluate, resilience=config, checkpoint=path
    )
    assert len(broken.failures) == 1
    assert broken.failures[0].index == 2
    assert math.isnan(broken.metrics["square"][2])

    store = CheckpointStore(path)
    store.load()
    assert len(store) == len(SWEEP_VALUES) - 1  # the failure was NOT persisted

    (gate / "open").touch()  # "fix" the flaky point
    resumed = sweep("swing", SWEEP_VALUES, evaluate, checkpoint=path, resume=True)
    assert resumed.failures == ()
    assert resumed == sweep("swing", SWEEP_VALUES, _sweep_eval)


def test_sweep_grid_interrupted_resume_is_bitwise_identical(tmp_path):
    parameters = {"a": (1.0, 2.0, 3.0), "b": (0.5, 0.25)}
    reference = sweep_grid(parameters, _grid_eval)
    path = tmp_path / "grid.jsonl"
    sweep_grid(parameters, _grid_eval, checkpoint=path)
    _truncate_to_records(path, 3)

    resumed = sweep_grid(parameters, _grid_eval, checkpoint=path, resume=True)
    assert resumed == reference


# --- fault campaign ---------------------------------------------------------------------


def test_fault_campaign_interrupted_resume_is_bitwise_identical(tmp_path):
    config = FaultCampaignConfig(
        k=3,
        injection_rate=0.06,
        size_flits=2,
        warmup=20,
        measure=80,
        drain_limit=20_000,
        bers=(2e-3,),
        protocols=("none", "crc"),
        seed=11,
    )
    reference = run_fault_campaign(config)
    path = tmp_path / "fault.jsonl"
    run_fault_campaign(config, checkpoint=path)
    _truncate_to_records(path, 1)  # keep 1 of 2 points

    resumed = run_fault_campaign(config, checkpoint=path, resume=True)
    assert resumed.points == reference.points

    changed = FaultCampaignConfig(
        k=3,
        injection_rate=0.06,
        size_flits=2,
        warmup=20,
        measure=80,
        drain_limit=20_000,
        bers=(2e-3,),
        protocols=("none", "crc"),
        seed=12,  # different seed -> different campaign
    )
    with pytest.raises(CheckpointError, match="different run configuration"):
        run_fault_campaign(changed, checkpoint=path, resume=True)
