"""End-to-end NoC simulation: delivery, ordering, flow control, multicast."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.noc import (
    MeshTopology,
    NocConfig,
    NocSimulator,
    Packet,
    SyntheticTraffic,
    pattern_destination,
    price_stats,
)


def make_sim(k=4, rate=0.05, pattern="uniform", seed=1, **cfg):
    return NocSimulator(k, config=NocConfig(**cfg), injection_rate=rate,
                        pattern=pattern, seed=seed)


def drive_packets(sim, packets, cycles=200):
    """Inject explicit packets (no random traffic) and run to drain."""
    sim.traffic.injection_rate = 0.0
    sim.stats.measure_start = 0
    sim.stats.measure_end = cycles
    for p in packets:
        sim.nics[p.src].offer(p)
    for _ in range(cycles):
        sim.step()
        if not sim._network_busy():
            break
    return sim.stats


# --- basic deliveries --------------------------------------------------------------------


def test_single_packet_delivered_with_correct_latency():
    sim = make_sim(rate=0.0)
    p = Packet(src=(0, 0), dests=frozenset({(3, 3)}), size_flits=1, inject_cycle=0)
    stats = drive_packets(sim, [p])
    assert stats.delivered_count == 1
    d = stats.deliveries[0]
    assert d.dest == (3, 3)
    # 6 hops * (pipeline 2 + link 1) plus injection/ejection overhead.
    assert 10 <= d.latency <= 40


def test_neighbor_packet_faster_than_diagonal():
    sim1 = make_sim(rate=0.0)
    near = Packet(src=(0, 0), dests=frozenset({(1, 0)}), size_flits=1, inject_cycle=0)
    lat_near = drive_packets(sim1, [near]).deliveries[0].latency
    sim2 = make_sim(rate=0.0)
    far = Packet(src=(0, 0), dests=frozenset({(3, 3)}), size_flits=1, inject_cycle=0)
    lat_far = drive_packets(sim2, [far]).deliveries[0].latency
    assert lat_near < lat_far


def test_multi_flit_packet_delivered_once():
    sim = make_sim(rate=0.0)
    p = Packet(src=(1, 1), dests=frozenset({(2, 3)}), size_flits=5, inject_cycle=0)
    stats = drive_packets(sim, [p])
    assert stats.delivered_count == 1  # counted at tail
    assert stats.injected_flits == 5
    assert stats.ejections == 5  # every flit leaves through LOCAL


def test_multicast_reaches_every_destination():
    sim = make_sim(rate=0.0)
    dests = frozenset({(3, 0), (0, 3), (3, 3)})
    p = Packet(src=(0, 0), dests=dests, size_flits=1, inject_cycle=0)
    stats = drive_packets(sim, [p])
    assert stats.delivered_count == 3
    assert {d.dest for d in stats.deliveries} == set(dests)


def test_multicast_tree_uses_fewer_link_traversals():
    dests = frozenset({(3, 0), (3, 1), (3, 2)})
    sim_tree = make_sim(rate=0.0)
    p = Packet(src=(0, 0), dests=dests, size_flits=1, inject_cycle=0)
    tree_links = drive_packets(sim_tree, [p]).link_traversals
    sim_uni = make_sim(rate=0.0)
    unicasts = [
        Packet(src=(0, 0), dests=frozenset({d}), size_flits=1, inject_cycle=0)
        for d in dests
    ]
    uni_links = drive_packets(sim_uni, unicasts).link_traversals
    assert tree_links < uni_links


def test_taps_deliver_straight_through_multicasts():
    dests = frozenset({(1, 0), (2, 0), (3, 0)})
    p = Packet(src=(0, 0), dests=dests, size_flits=1, inject_cycle=0)
    sim = make_sim(rate=0.0, enable_taps=True)
    stats = drive_packets(sim, [p])
    assert stats.delivered_count == 3
    assert stats.tap_deliveries == 2  # (1,0) and (2,0) are on the way
    # Without taps the same traffic needs more ejections.
    sim2 = make_sim(rate=0.0, enable_taps=False)
    p2 = Packet(src=(0, 0), dests=dests, size_flits=1, inject_cycle=0)
    stats2 = drive_packets(sim2, [p2])
    assert stats2.tap_deliveries == 0
    assert stats2.ejections > stats.ejections


# --- conservation and protocol invariants -------------------------------------------------


def test_flit_conservation_under_random_traffic():
    sim = make_sim(rate=0.12, seed=9)
    stats = sim.run(warmup=100, measure=300)
    # Every buffered flit is eventually read out; nothing is lost.
    assert stats.buffer_writes == stats.buffer_reads
    # Every packet reaches every destination it owes (single-dest here).
    assert stats.delivered_count > 0


def test_all_offered_packets_delivered_exactly_once():
    sim = make_sim(rate=0.08, seed=4)
    sim.run(warmup=50, measure=200)
    delivered_ids = [d.packet_id for d in sim.stats.deliveries]
    assert len(delivered_ids) == len(set(delivered_ids))  # no duplicates
    assert len(delivered_ids) == sim.stats.injected_packets


def test_credits_fully_restored_after_drain():
    sim = make_sim(rate=0.1, seed=2)
    sim.run(warmup=50, measure=200)
    for router in sim.routers.values():
        for out in router.outputs.values():
            assert out.credits == [sim.config.vc_capacity] * sim.config.n_vcs
            assert all(owner is None for owner in out.owner)
    for nic in sim.nics.values():
        assert nic.out.credits == [sim.config.vc_capacity] * sim.config.n_vcs


def test_deterministic_given_seed():
    a = make_sim(rate=0.1, seed=13).run(warmup=50, measure=150)
    b = make_sim(rate=0.1, seed=13).run(warmup=50, measure=150)
    assert a.delivered_count == b.delivered_count
    assert a.average_latency == b.average_latency
    assert a.link_traversals == b.link_traversals


def test_latency_grows_with_load():
    low = make_sim(rate=0.02, seed=6).run(warmup=100, measure=300)
    high = make_sim(rate=0.35, seed=6).run(warmup=100, measure=300)
    assert high.average_latency > low.average_latency
    assert high.throughput(16) > low.throughput(16)


def test_transpose_pattern_works():
    sim = make_sim(rate=0.05, pattern="transpose", seed=8)
    stats = sim.run(warmup=50, measure=200)
    for d in stats.deliveries[:10]:
        pass  # deliveries happened; pattern correctness tested below
    assert stats.delivered_count > 0


# --- traffic generator ---------------------------------------------------------------------


def test_pattern_destinations():
    assert pattern_destination("transpose", (1, 3), 4, None) == (3, 1)
    assert pattern_destination("bit_complement", (0, 1), 4, None) == (3, 2)
    assert pattern_destination("neighbor", (3, 2), 4, None) == (0, 2)
    assert pattern_destination("hotspot", (0, 0), 4, None) == (2, 2)


def test_pattern_never_self_addresses():
    import numpy as np

    rng = np.random.default_rng(0)
    for pattern in ("uniform", "transpose", "bit_complement", "neighbor", "hotspot"):
        for x in range(4):
            for y in range(4):
                dest = pattern_destination(pattern, (x, y), 4, rng)
                assert dest != (x, y)


def test_traffic_rate_statistics():
    topo = MeshTopology(4)
    traffic = SyntheticTraffic(topo, injection_rate=0.25, seed=3)
    total = sum(len(traffic.packets_for_cycle(c)) for c in range(500))
    expected = 0.25 * 16 * 500
    assert total == pytest.approx(expected, rel=0.1)


def test_traffic_multicast_fraction():
    topo = MeshTopology(4)
    traffic = SyntheticTraffic(
        topo, injection_rate=0.5, multicast_fraction=0.5, multicast_degree=3, seed=3
    )
    packets = [p for c in range(200) for p in traffic.packets_for_cycle(c)]
    mc = [p for p in packets if p.is_multicast]
    assert 0.3 < len(mc) / len(packets) < 0.7
    assert all(len(p.dests) == 3 for p in mc)


def test_traffic_validation():
    topo = MeshTopology(4)
    with pytest.raises(ConfigurationError):
        SyntheticTraffic(topo, injection_rate=1.5)
    with pytest.raises(ConfigurationError):
        SyntheticTraffic(topo, 0.1, pattern="tornado")
    with pytest.raises(ConfigurationError):
        SyntheticTraffic(topo, 0.1, multicast_degree=99, multicast_fraction=0.5)


# --- energy pricing ---------------------------------------------------------------------


def test_price_stats_components_positive():
    sim = make_sim(rate=0.1, seed=5)
    stats = sim.run(warmup=50, measure=200)
    report = price_stats(stats, datapath="srlr")
    assert report.buffers > 0
    assert report.datapath > 0
    assert report.total == pytest.approx(
        report.buffers + report.control + report.datapath + report.taps
    )
    assert report.average_power > 0
    assert report.energy_per_delivered_flit(stats.delivered_count) > 0


def test_full_swing_pricing_costs_more():
    sim = make_sim(rate=0.1, seed=5)
    stats = sim.run(warmup=50, measure=200)
    srlr = price_stats(stats, datapath="srlr")
    fs = price_stats(stats, datapath="full_swing")
    assert fs.datapath > 2 * srlr.datapath
    assert fs.buffers == srlr.buffers


def test_price_stats_validation():
    sim = make_sim(rate=0.05, seed=5)
    stats = sim.run(warmup=20, measure=100)
    report = price_stats(stats)
    with pytest.raises(ConfigurationError):
        report.energy_per_delivered_flit(0)


def test_simulator_validation():
    with pytest.raises(ConfigurationError):
        make_sim().run(warmup=-1, measure=100)
    with pytest.raises(ConfigurationError):
        topo = MeshTopology(8)
        traffic = SyntheticTraffic(topo, 0.1)
        NocSimulator(4, traffic=traffic)  # mismatched mesh size
