"""The workload subsystem: trace ingestion, generators, payload pricing.

Covers the four legs of the workload axis (docs/WORKLOADS.md):

* trace save/load round-trips in both formats (payload bits included),
  streaming ingestion, and format/path-independent content identity;
* the Markov on/off and collective generators — determinism, offered
  load, drain protocol, validation;
* payload attachment and the data-dependent link energy model,
  including the exact worst-case reduction: an all-toggle payload with
  coupling disabled must price *bitwise* to the constant model;
* the campaign config's named workload-validation guards and the v3
  content hash following trace content, not trace path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadConfigError
from repro.fault import FaultCampaignConfig
from repro.noc import (
    MeshTopology,
    NocSimulator,
    SyntheticTraffic,
    TraceEntry,
    TraceTraffic,
    build_topology,
    iter_trace_text,
    price_stats,
    record_trace,
    trace_file_hash,
)
from repro.workload import (
    COLLECTIVES,
    PAYLOAD_MODES,
    WORKLOADS,
    BurstyTraffic,
    CollectiveTraffic,
    PayloadedTraffic,
    build_traffic,
    coupling_miller_fraction,
    load_trace_cached,
    payload_datapath_energy,
)

SEED = 11


def _mesh(k=4):
    return MeshTopology(k)


def _sample_trace(topology=None, payload=True):
    topology = topology or _mesh()
    source = build_traffic(
        topology,
        "bursty",
        injection_rate=0.1,
        seed=SEED,
        payload_mode="random" if payload else "constant",
    )
    return record_trace(source, 80)


# --- trace round-trips and ingestion -----------------------------------------------------


def test_trace_json_roundtrip_with_payload(tmp_path):
    trace = _sample_trace()
    assert any(e.payload for e in trace.entries)
    path = tmp_path / "t.json"
    trace.save(path)
    loaded = TraceTraffic.load(path)
    assert loaded.entries == trace.entries
    assert loaded.topology == trace.topology
    assert loaded.flit_bits == trace.flit_bits


def test_trace_text_roundtrip_with_payload(tmp_path):
    trace = _sample_trace()
    path = tmp_path / "t.trace"
    trace.save_text(path)
    loaded = TraceTraffic.load_text(path)
    assert loaded.entries == trace.entries
    assert loaded.topology == trace.topology


def test_trace_streaming_ingestion_is_lazy(tmp_path):
    trace = _sample_trace()
    path = tmp_path / "t.trace"
    trace.save_text(path)
    stream = iter_trace_text(path)
    spec = next(stream)
    assert spec == {"kind": "mesh", "k": 4}
    first = next(stream)
    assert isinstance(first, TraceEntry)
    assert first == trace.entries[0]
    assert list(stream) == trace.entries[1:]


def test_trace_text_rejects_entries_before_header(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("0 0,0 1,1 1\n")
    with pytest.raises(ConfigurationError, match="topology directive"):
        list(iter_trace_text(path))


def test_trace_content_hash_is_format_and_path_independent(tmp_path):
    trace = _sample_trace()
    a = tmp_path / "a.json"
    b = tmp_path / "sub"
    b.mkdir()
    b = b / "b.trace"
    trace.save(a)
    trace.save_text(b)
    assert trace_file_hash(a) == trace_file_hash(b) == trace.content_hash()


def test_trace_content_hash_tracks_payload():
    with_payload = _sample_trace(payload=True)
    without = TraceTraffic(
        topology=with_payload.topology,
        entries=[
            TraceEntry(e.cycle, e.src, e.dests, e.size_flits)
            for e in with_payload.entries
        ],
    )
    assert with_payload.content_hash() != without.content_hash()


def test_trace_on_torus_roundtrip(tmp_path):
    topology = build_topology("torus", 4)
    trace = record_trace(
        SyntheticTraffic(topology, 0.1, "uniform", seed=SEED), 40
    )
    path = tmp_path / "torus.json"
    trace.save(path)
    loaded = TraceTraffic.load(path)
    assert loaded.topology == topology
    assert loaded.entries == trace.entries


def test_trace_rejects_payload_word_wider_than_flit_bits():
    with pytest.raises(ConfigurationError, match="flit_bits"):
        TraceTraffic(
            topology=_mesh(),
            entries=[TraceEntry(0, (0, 0), ((1, 1),), 1, (1 << 64,))],
        )


def test_trace_rejects_payload_length_mismatch():
    with pytest.raises(ConfigurationError, match="payload words"):
        TraceTraffic(
            topology=_mesh(),
            entries=[TraceEntry(0, (0, 0), ((1, 1),), 2, (5,))],
        )


def test_trace_drain_protocol():
    trace = _sample_trace()
    assert not trace.draining
    trace.begin_drain()
    assert trace.draining
    assert trace.packets_for_cycle(trace.entries[0].cycle) == []
    with pytest.raises(ConfigurationError):
        trace.begin_drain()
    trace.end_drain()
    with pytest.raises(ConfigurationError):
        trace.end_drain()
    assert trace.packets_for_cycle(trace.entries[0].cycle)


def test_load_trace_cached_returns_fresh_instances(tmp_path):
    trace = _sample_trace()
    path = tmp_path / "t.json"
    trace.save(path)
    first = load_trace_cached(path)
    second = load_trace_cached(path)
    assert first is not second
    assert first.entries is second.entries  # parsed once
    first.begin_drain()
    assert not second.draining


# --- generators --------------------------------------------------------------------------


def test_bursty_deterministic_and_mean_rate():
    def run(seed):
        traffic = BurstyTraffic(_mesh(), 0.1, seed=seed)
        return [
            sorted((p.src, tuple(sorted(p.dests))) for p in
                   traffic.packets_for_cycle(c))
            for c in range(300)
        ]

    assert run(3) == run(3)
    assert run(3) != run(4)
    traffic = BurstyTraffic(_mesh(), 0.1, seed=SEED)
    n = sum(len(traffic.packets_for_cycle(c)) for c in range(4000))
    mean = n / (4000 * 16)
    assert 0.08 < mean < 0.12  # long-run offered load matches the rate


def test_bursty_is_actually_bursty():
    # The on/off modulation clumps injections *in time*: per-cycle
    # counts are near-Bernoulli, but sums over burst-length windows
    # carry the chains' positive autocorrelation, so their variance far
    # exceeds a uniform run's at the same mean rate.
    window = 25  # ~ two mean burst lengths at burst_off=0.08

    def windowed_var(traffic):
        counts = [len(traffic.packets_for_cycle(c)) for c in range(5000)]
        sums = [
            sum(counts[i:i + window]) for i in range(0, 5000, window)
        ]
        return float(np.var(sums))

    bursty = windowed_var(
        BurstyTraffic(_mesh(), 0.1, burst_on=0.02, burst_off=0.08, seed=SEED)
    )
    uniform = windowed_var(SyntheticTraffic(_mesh(), 0.1, "uniform", seed=SEED))
    assert bursty > 2.0 * uniform


def test_bursty_drain_freezes_chain():
    traffic = BurstyTraffic(_mesh(), 0.1, seed=SEED)
    for c in range(50):
        traffic.packets_for_cycle(c)
    traffic.begin_drain()
    assert traffic.packets_for_cycle(50) == []
    assert traffic.draining
    traffic.end_drain()
    assert not traffic.draining


def test_bursty_validation():
    with pytest.raises(ConfigurationError, match="burst_on"):
        BurstyTraffic(_mesh(), 0.1, burst_on=0.0)
    with pytest.raises(ConfigurationError, match="duty"):
        BurstyTraffic(_mesh(), 0.9, burst_on=0.05, burst_off=0.45)
    with pytest.raises(ConfigurationError, match="pattern"):
        BurstyTraffic(_mesh(), 0.1, pattern="zigzag")


def test_collective_emits_structured_multicasts():
    traffic = CollectiveTraffic(_mesh(), 0.3, collective_fraction=1.0,
                                seed=SEED)
    packets = [
        p for c in range(50) for p in traffic.packets_for_cycle(c)
    ]
    assert packets
    for p in packets:
        (x, y) = p.src
        assert p.dests == frozenset(
            (cx, y) for cx in range(4) if (cx, y) != p.src
        )
    assert traffic.multicast_fraction == 1.0


def test_collective_validation():
    with pytest.raises(ConfigurationError, match="grid-endpoint"):
        CollectiveTraffic(
            build_topology("chiplet", 2, chiplets_x=2, chiplets_y=2), 0.1
        )
    with pytest.raises(ConfigurationError, match="collective"):
        CollectiveTraffic(_mesh(), 0.1, collective="diagonal")
    with pytest.raises(ConfigurationError, match="multicast_degree"):
        CollectiveTraffic(_mesh(), 0.1, collective="random",
                          multicast_degree=1)


# --- payload attachment and data-dependent energy ----------------------------------------


def test_payloaded_traffic_delegates_and_attaches():
    inner = SyntheticTraffic(_mesh(), 0.2, "uniform", seed=SEED)
    traffic = PayloadedTraffic(inner, mode="random", flit_bits=64)
    assert traffic.topology == inner.topology
    assert traffic.injection_rate == 0.2
    packets = []
    for c in range(20):
        packets.extend(traffic.packets_for_cycle(c))
    assert packets
    for p in packets:
        assert len(p.payload) == p.size_flits
        assert all(0 <= w < (1 << 64) for w in p.payload)


def test_payload_does_not_perturb_delivery_stats():
    # The payload RNG is a separate derived stream: latency, hop and
    # traversal statistics of a payloaded run equal the constant run's.
    def run(payload_mode):
        topology = _mesh()
        traffic = build_traffic(
            topology, "synthetic", injection_rate=0.15, seed=SEED,
            payload_mode=payload_mode,
        )
        sim = NocSimulator(topology, traffic=traffic, seed=SEED,
                           engine="fast")
        stats = sim.run(warmup=40, measure=150)
        return (
            stats.injected_packets,
            stats.link_traversals,
            stats.average_latency,
            sorted((d.src, d.dest, d.deliver_cycle) for d in stats.deliveries),
        )

    assert run("constant") == run("random")


def test_worst_case_reduction_is_bitwise():
    # THE acceptance criterion: all-toggle payload + coupling off must
    # price bitwise-identically to the constant per-bit model.
    topology = _mesh()
    traffic = build_traffic(
        topology, "synthetic", injection_rate=0.15, seed=SEED,
        payload_mode="worst_case",
    )
    sim = NocSimulator(topology, traffic=traffic, seed=SEED, engine="fast")
    stats = sim.run(warmup=40, measure=150)
    assert all(link.coupling_events == 0 for link in sim.links)
    counted = price_stats(stats, links=sim.links, coupling=False)
    constant = price_stats(stats)
    assert counted.datapath == constant.datapath
    assert counted.total == constant.total


def test_random_payload_prices_below_constant():
    topology = _mesh()
    traffic = build_traffic(
        topology, "synthetic", injection_rate=0.15, seed=SEED,
        payload_mode="random",
    )
    sim = NocSimulator(topology, traffic=traffic, seed=SEED, engine="fast")
    stats = sim.run(warmup=40, measure=150)
    counted = price_stats(stats, links=sim.links)
    constant = price_stats(stats)
    # ~half the wires toggle; the Miller surcharge cannot make up the
    # factor-two gap.
    assert counted.datapath < 0.75 * constant.datapath
    assert counted.datapath > 0.25 * constant.datapath


def test_coupling_term_is_positive_and_bounded():
    fraction = coupling_miller_fraction()
    assert 0.0 < fraction < 1.0
    topology = _mesh()
    traffic = build_traffic(
        topology, "synthetic", injection_rate=0.15, seed=SEED,
        payload_mode="random",
    )
    sim = NocSimulator(topology, traffic=traffic, seed=SEED, engine="fast")
    sim.run(warmup=40, measure=150)
    assert any(link.coupling_events for link in sim.links)
    e_dp = 1e-12
    with_coupling = payload_datapath_energy(sim.links, e_dp, 64)
    without = payload_datapath_energy(sim.links, e_dp, 64, coupling=False)
    assert with_coupling > without


def test_payloaded_traffic_rejects_double_wrap_and_bad_mode():
    inner = SyntheticTraffic(_mesh(), 0.1, "uniform", seed=SEED)
    wrapped = PayloadedTraffic(inner)
    with pytest.raises(ConfigurationError, match="already carries"):
        PayloadedTraffic(wrapped)
    with pytest.raises(ConfigurationError, match="mode"):
        PayloadedTraffic(inner, mode="alternating")


# --- the build_traffic factory -----------------------------------------------------------


def test_build_traffic_dispatch():
    topology = _mesh()
    assert isinstance(
        build_traffic(topology, "synthetic", injection_rate=0.1),
        SyntheticTraffic,
    )
    assert isinstance(
        build_traffic(topology, "bursty", injection_rate=0.1), BurstyTraffic
    )
    assert isinstance(
        build_traffic(topology, "collective", injection_rate=0.1),
        CollectiveTraffic,
    )
    wrapped = build_traffic(
        topology, "bursty", injection_rate=0.1, payload_mode="random"
    )
    assert isinstance(wrapped, PayloadedTraffic)
    assert isinstance(wrapped.inner, BurstyTraffic)


def test_build_traffic_trace_guards(tmp_path):
    trace = _sample_trace()
    path = tmp_path / "t.json"
    trace.save(path)
    with pytest.raises(WorkloadConfigError, match="trace_path"):
        build_traffic(_mesh(), "trace")
    with pytest.raises(WorkloadConfigError, match="recorded on"):
        build_traffic(MeshTopology(6), "trace", trace_path=path)
    with pytest.raises(WorkloadConfigError, match="payload_mode"):
        build_traffic(_mesh(), "trace", trace_path=path,
                      payload_mode="random")
    with pytest.raises(WorkloadConfigError, match="workload"):
        build_traffic(_mesh(), "replay")
    with pytest.raises(WorkloadConfigError, match="unicast-only"):
        build_traffic(_mesh(), "bursty", injection_rate=0.1,
                      multicast_fraction=0.5)


# --- campaign config validation and identity ---------------------------------------------


def _campaign(**kwargs):
    base = dict(k=3, warmup=20, measure=60, bers=(1e-3,),
                protocols=("none",), seed=SEED)
    base.update(kwargs)
    return FaultCampaignConfig(**base)


def test_campaign_rejects_unknown_workload_combos(tmp_path):
    with pytest.raises(WorkloadConfigError, match="workload"):
        _campaign(workload="replay")
    with pytest.raises(WorkloadConfigError, match="payload_mode"):
        _campaign(payload_mode="toggle")
    with pytest.raises(WorkloadConfigError, match="trace_path"):
        _campaign(trace_path="/tmp/x.json")  # without workload="trace"
    with pytest.raises(WorkloadConfigError, match="burst_on"):
        _campaign(burst_on=0.5)  # synthetic workload
    with pytest.raises(WorkloadConfigError, match="collective"):
        _campaign(collective_fraction=0.5)
    with pytest.raises(WorkloadConfigError, match="unicast-only"):
        _campaign(workload="bursty", multicast_fraction=0.3)
    with pytest.raises(WorkloadConfigError, match="coupling"):
        _campaign(coupling=False)  # constant pricing: nothing to drop
    with pytest.raises(WorkloadConfigError, match="needs a trace_path"):
        _campaign(workload="trace")
    trace = _sample_trace(_mesh(3))
    path = tmp_path / "t.json"
    trace.save(path)
    with pytest.raises(WorkloadConfigError, match="generator knobs"):
        _campaign(workload="trace", trace_path=str(path), injection_rate=0.2)
    with pytest.raises(WorkloadConfigError, match="recorded on"):
        _campaign(workload="trace", trace_path=str(path), k=4)


def test_campaign_hash_follows_trace_content(tmp_path):
    trace = _sample_trace(_mesh(3))
    a = tmp_path / "a.json"
    b = tmp_path / "b.trace"
    trace.save(a)
    trace.save_text(b)
    ha = _campaign(workload="trace", trace_path=str(a)).content_hash()
    hb = _campaign(workload="trace", trace_path=str(b)).content_hash()
    assert ha == hb  # same logical trace, different path and format
    edited = TraceTraffic(
        topology=trace.topology, entries=trace.entries[:-1]
    )
    edited.save(a)
    assert _campaign(
        workload="trace", trace_path=str(a)
    ).content_hash() != ha


def test_campaign_hash_separates_workloads():
    hashes = {
        _campaign().content_hash(),
        _campaign(workload="bursty").content_hash(),
        _campaign(workload="bursty", burst_on=0.02).content_hash(),
        _campaign(workload="collective").content_hash(),
        _campaign(payload_mode="random").content_hash(),
        _campaign(payload_mode="random", coupling=False).content_hash(),
    }
    assert len(hashes) == 6


def test_workload_vocabulary_is_closed():
    assert WORKLOADS == ("synthetic", "bursty", "collective", "trace")
    assert PAYLOAD_MODES == ("constant", "random", "worst_case")
    assert COLLECTIVES == ("row", "col", "random")
