"""Eye analysis, Vdd scaling, trace traffic, calibration report."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.circuit import eye_at_rate, eye_vs_rate
from repro.energy import sweep_vdd
from repro.noc import (
    MeshTopology,
    NocSimulator,
    SyntheticTraffic,
    TraceTraffic,
    record_trace,
)
from repro.analysis import calibration_checks, calibration_report


# --- eye --------------------------------------------------------------------------------


def test_eye_open_at_rated_speed(robust_link):
    eye = eye_at_rate(robust_link, 4.1e9, n_bits=256)
    assert eye.open
    assert eye.height > 0.1
    assert eye.one_min > eye.sensitivity_floor > eye.zero_max
    assert eye.ber_estimate() < 1e-9


def test_eye_closes_in_time_at_overspeed(robust_link):
    eye = eye_at_rate(robust_link, 6.5e9, n_bits=256)
    assert eye.timing_margin < 0
    assert not eye.open
    assert eye.ber_estimate() == 0.5


def test_eye_zero_level_grows_with_rate(robust_link):
    reports = eye_vs_rate(robust_link, [3.0e9, 5.0e9], n_bits=256)
    assert reports[1].zero_max > reports[0].zero_max  # ISI grows
    assert reports[1].timing_margin < reports[0].timing_margin


def test_eye_probe_stage_selection(robust_link):
    first = eye_at_rate(robust_link, 4.1e9, stage_index=0, n_bits=128)
    last = eye_at_rate(robust_link, 4.1e9, stage_index=9, n_bits=128)
    assert first.stage_index == 0 and last.stage_index == 9
    assert first.open and last.open


def test_eye_validation(robust_link):
    with pytest.raises(ConfigurationError):
        eye_at_rate(robust_link, 0.0)
    with pytest.raises(ConfigurationError):
        eye_at_rate(robust_link, 4.1e9, n_bits=4)
    with pytest.raises(ConfigurationError):
        eye_vs_rate(robust_link, [])


# --- vdd scaling ------------------------------------------------------------------------


def test_vdd_sweep_shape():
    points = sweep_vdd([0.7, 0.8, 0.9])
    by_vdd = {p.vdd: p for p in points}
    assert by_vdd[0.8].ok_at_4g1  # the paper's operating point
    # Energy falls as the supply scales down (whenever the link works).
    working = [p for p in points if p.max_data_rate > 0]
    energies = [p.energy_fj_per_bit_per_mm for p in sorted(working, key=lambda p: p.vdd)]
    assert energies == sorted(energies)
    # Max rate improves (or holds) with supply.
    rates = [p.max_data_rate for p in sorted(working, key=lambda p: p.vdd)]
    assert rates == sorted(rates)


def test_vdd_sweep_validation():
    with pytest.raises(ConfigurationError):
        sweep_vdd([])
    with pytest.raises(ConfigurationError):
        sweep_vdd([0.8], swing_fraction=1.5)


# --- trace traffic ----------------------------------------------------------------------


def test_record_and_replay_trace_deterministic():
    topo = MeshTopology(4)
    gen = SyntheticTraffic(topo, injection_rate=0.1, seed=23)
    trace = record_trace(gen, 120)
    assert trace.n_packets > 0

    def run(traffic):
        sim = NocSimulator(4, traffic=traffic)
        return sim.run(warmup=0, measure=130)

    a = run(TraceTraffic(topo, trace.entries))
    b = run(TraceTraffic(topo, trace.entries))
    assert a.delivered_count == b.delivered_count == trace.n_packets
    assert a.average_latency == b.average_latency


def test_trace_save_load_roundtrip(tmp_path):
    topo = MeshTopology(4)
    gen = SyntheticTraffic(topo, injection_rate=0.1, multicast_fraction=0.3, seed=2)
    trace = record_trace(gen, 60)
    path = tmp_path / "trace.json"
    trace.save(path)
    loaded = TraceTraffic.load(path)
    assert loaded.n_packets == trace.n_packets
    assert loaded.topology.k == 4
    assert loaded.entries == trace.entries


def test_trace_validation():
    topo = MeshTopology(4)
    from repro.noc.trace import TraceEntry

    with pytest.raises(ConfigurationError):
        TraceTraffic(topo, [TraceEntry(cycle=-1, src=(0, 0), dests=((1, 1),), size_flits=1)])
    with pytest.raises(ConfigurationError):
        TraceTraffic(topo, [TraceEntry(cycle=0, src=(9, 9), dests=((1, 1),), size_flits=1)])
    gen = SyntheticTraffic(topo, 0.1)
    with pytest.raises(ConfigurationError):
        record_trace(gen, 0)


# --- calibration ------------------------------------------------------------------------


def test_calibration_checks_all_green():
    checks = calibration_checks()
    for check in checks:
        assert check.ok, f"{check.name}={check.value} outside [{check.lo},{check.hi}]"


def test_calibration_report_renders():
    text = calibration_report()
    assert "Calibration anchors" in text
    assert "Live drift check" in text
    assert "emergent" in text
