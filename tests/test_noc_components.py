"""NoC building blocks: packets, VCs, credits, arbiters, crossbar."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.noc import Crossbar, Packet, Port
from repro.noc.arbiters import Allocator, RoundRobinArbiter
from repro.noc.packet import FlitType
from repro.noc.vc import InputPort, OutputPort, VirtualChannel


# --- packets / flits --------------------------------------------------------------------


def test_single_flit_packet():
    p = Packet(src=(0, 0), dests=frozenset({(1, 1)}), size_flits=1, inject_cycle=5)
    flits = p.flits()
    assert len(flits) == 1
    assert flits[0].is_head and flits[0].is_tail
    assert flits[0].flit_type is FlitType.SINGLE


def test_multi_flit_packet_structure():
    p = Packet(src=(0, 0), dests=frozenset({(1, 1)}), size_flits=4, inject_cycle=0)
    flits = p.flits()
    assert [f.flit_type for f in flits] == [
        FlitType.HEAD,
        FlitType.BODY,
        FlitType.BODY,
        FlitType.TAIL,
    ]
    assert [f.seq for f in flits] == [0, 1, 2, 3]


def test_multicast_must_be_single_flit():
    with pytest.raises(ConfigurationError):
        Packet(
            src=(0, 0),
            dests=frozenset({(1, 1), (2, 2)}),
            size_flits=3,
            inject_cycle=0,
        )


def test_packet_validation():
    with pytest.raises(ConfigurationError):
        Packet(src=(0, 0), dests=frozenset(), size_flits=1, inject_cycle=0)
    with pytest.raises(ConfigurationError):
        Packet(src=(0, 0), dests=frozenset({(0, 0)}), size_flits=1, inject_cycle=0)
    with pytest.raises(ConfigurationError):
        Packet(src=(0, 0), dests=frozenset({(1, 1)}), size_flits=0, inject_cycle=0)


def test_flit_branching():
    p = Packet(
        src=(0, 0), dests=frozenset({(1, 0), (2, 0)}), size_flits=1, inject_cycle=0
    )
    flit = p.flits()[0]
    branch = flit.branch(frozenset({(1, 0)}))
    assert branch.dests == frozenset({(1, 0)})
    assert branch.packet is p
    with pytest.raises(ConfigurationError):
        flit.branch(frozenset({(9, 9)}))
    with pytest.raises(ConfigurationError):
        flit.branch(frozenset())


def test_packet_ids_unique():
    a = Packet(src=(0, 0), dests=frozenset({(1, 1)}), size_flits=1, inject_cycle=0)
    b = Packet(src=(0, 0), dests=frozenset({(1, 1)}), size_flits=1, inject_cycle=0)
    assert a.packet_id != b.packet_id


# --- VCs and credits --------------------------------------------------------------------


def _single(dst=(1, 1)):
    return Packet(
        src=(0, 0), dests=frozenset({dst}), size_flits=1, inject_cycle=0
    ).flits()[0]


def test_vc_fifo_and_readiness():
    vc = VirtualChannel(capacity=2)
    vc.push(_single(), ready_cycle=5)
    assert vc.front(4) is None  # still in the pipeline
    assert vc.front(5) is not None
    assert vc.occupancy == 1


def test_vc_overflow_detected():
    vc = VirtualChannel(capacity=1)
    vc.push(_single(), 0)
    with pytest.raises(ProtocolError):
        vc.push(_single(), 0)


def test_vc_pop_clears_state_on_tail():
    vc = VirtualChannel(capacity=2)
    vc.out_port = Port.EAST
    vc.out_vc = 1
    vc.push(_single(), 0)
    vc.pop()
    assert vc.out_port is None and vc.out_vc is None
    assert vc.is_idle
    with pytest.raises(ProtocolError):
        vc.pop()


def test_input_port_idle_vc_search():
    port = InputPort(n_vcs=2, vc_capacity=2)
    assert port.idle_vc() == 0
    port.vcs[0].push(_single(), 0)
    assert port.idle_vc() == 1
    port.vcs[1].out_port = Port.EAST  # busy mid-packet
    assert port.idle_vc() is None


def test_output_port_credits_and_ownership():
    out = OutputPort(n_vcs=2, vc_capacity=2)
    assert out.free_vcs() == [0, 1]
    out.acquire(0, (Port.WEST, 1))
    assert out.free_vcs() == [1]
    with pytest.raises(ProtocolError):
        out.acquire(0, (Port.EAST, 0))
    out.consume_credit(0)
    out.consume_credit(0)
    with pytest.raises(ProtocolError):
        out.consume_credit(0)
    out.return_credit(0)
    out.return_credit(0)
    with pytest.raises(ProtocolError):
        out.return_credit(0)
    out.release(0)
    with pytest.raises(ProtocolError):
        out.release(0)


# --- arbiters ---------------------------------------------------------------------------


def test_round_robin_rotates():
    arb = RoundRobinArbiter(4)
    grants = [arb.grant({0, 1, 2, 3}) for _ in range(8)]
    assert grants == [0, 1, 2, 3, 0, 1, 2, 3]


def test_round_robin_skips_idle():
    arb = RoundRobinArbiter(4)
    assert arb.grant({2}) == 2
    assert arb.grant({1, 3}) == 3
    assert arb.grant(set()) is None


def test_round_robin_no_starvation():
    arb = RoundRobinArbiter(3)
    wins = {0: 0, 1: 0, 2: 0}
    for _ in range(99):
        winner = arb.grant({0, 1, 2})
        wins[winner] += 1
    assert wins == {0: 33, 1: 33, 2: 33}


def test_allocator_one_grant_per_side():
    alloc = Allocator()
    grants = alloc.allocate({"a": ["X", "Y"], "b": ["X"], "c": ["Y"]})
    # Each requester at most one resource; each resource at most one owner.
    assert len(set(grants.values())) == len(grants)
    for requester, resource in grants.items():
        assert resource in {"X", "Y"}


def test_allocator_empty_requests():
    assert Allocator().allocate({}) == {}
    assert Allocator().allocate({"a": []}) == {}


def test_arbiter_validation():
    with pytest.raises(ConfigurationError):
        RoundRobinArbiter(0)


# --- crossbar ----------------------------------------------------------------------------


def test_crossbar_counts_traversals():
    xbar = Crossbar()
    xbar.connect(Port.WEST, Port.EAST)
    xbar.connect(Port.WEST, Port.EAST)
    xbar.connect(Port.LOCAL, Port.NORTH)
    assert xbar.traversals == 3
    assert xbar.crosspoint_counts[(Port.WEST, Port.EAST)] == 2


def test_crossbar_rejects_u_turn():
    xbar = Crossbar()
    with pytest.raises(ProtocolError):
        xbar.connect(Port.EAST, Port.EAST)
    permissive = Crossbar(allow_u_turn=True)
    permissive.connect(Port.EAST, Port.EAST)  # allowed when configured


def test_crosspoint_count_matches_paper():
    assert Crossbar.n_crosspoints(5) == 20  # the 64 x 20 SRLRs of Fig. 3
    assert Crossbar.n_crosspoints(5, allow_u_turn=True) == 25
    with pytest.raises(ConfigurationError):
        Crossbar.n_crosspoints(1)
