"""Fault injection mechanics: parity when inert, corruption mid-flight,
drop absorption under backlog, in-order delivery through retransmission,
and link/VC edge cases under faults."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fault import FaultLayer, NoFaults, UniformBer
from repro.fault.models import DeadLinks
from repro.fault.protection import ProtectionConfig
from repro.noc import Link, LinkEnd, NocConfig, NocSimulator, Packet


def _delivery_keys(stats):
    """Structural delivery identity (packet ids are process-global)."""
    return sorted(
        (d.src, d.dest, d.inject_cycle, d.deliver_cycle, d.via_tap, d.corrupted)
        for d in stats.deliveries
    )


def _assert_flow_control_reset(sim):
    for router in sim.routers.values():
        for out in router.outputs.values():
            assert out.credits == [sim.config.vc_capacity] * sim.config.n_vcs
            assert all(owner is None for owner in out.owner)
        for port in router.inputs.values():
            assert port.occupancy == 0
    for nic in sim.nics.values():
        assert nic.backlog == 0


class TestInertParity:
    """Acceptance: with fault models disabled, cycle-level results are
    unchanged against a simulator with no layer attached at all."""

    def test_no_faults_layer_matches_bare_simulator(self):
        bare = NocSimulator(3, injection_rate=0.1, seed=3)
        bare_stats = bare.run(warmup=50, measure=200)

        sim = NocSimulator(3, injection_rate=0.1, seed=3)
        FaultLayer(NoFaults(), "none", seed=0).attach(sim)
        stats = sim.run(warmup=50, measure=200)

        assert _delivery_keys(stats) == _delivery_keys(bare_stats)
        for counter in (
            "buffer_writes",
            "buffer_reads",
            "crossbar_traversals",
            "link_traversals",
            "ejections",
            "injected_flits",
            "corrupted_deliveries",
        ):
            assert getattr(stats, counter) == getattr(bare_stats, counter)

    def test_zero_ber_uniform_is_also_inert(self):
        bare = NocSimulator(2, injection_rate=0.08, seed=9)
        bare_stats = bare.run(warmup=30, measure=150)
        sim = NocSimulator(2, injection_rate=0.08, seed=9)
        FaultLayer(UniformBer(0.0), "crc", seed=0).attach(sim)
        stats = sim.run(warmup=30, measure=150)
        assert _delivery_keys(stats) == _delivery_keys(bare_stats)

    def test_double_attach_rejected(self):
        sim = NocSimulator(2, seed=1)
        layer = FaultLayer(NoFaults(), "none").attach(sim)
        with pytest.raises(ConfigurationError):
            FaultLayer(NoFaults(), "none").attach(sim)
        with pytest.raises(ConfigurationError):
            layer.attach(NocSimulator(2, seed=1))


class TestCorruption:
    def test_corruption_appears_and_is_counted(self):
        sim = NocSimulator(3, injection_rate=0.08, seed=3)
        layer = FaultLayer(UniformBer(2e-3), "none", seed=1).attach(sim)
        stats = sim.run(warmup=50, measure=300)
        assert stats.corrupted_deliveries > 0
        assert layer.stats.flits_corrupted > 0
        assert layer.stats.raw_faults == layer.stats.flits_corrupted
        # Every measured delivery is either clean or corrupted.
        assert (
            stats.clean_delivered_count
            + sum(1 for d in stats._measured() if d.corrupted)
            == stats.delivered_count
        )

    def test_corrupted_body_flit_spoils_whole_packet(self):
        # Multi-flit packets: packet-level corruption must be >= what
        # tail-only bookkeeping would claim.
        sim = NocSimulator(
            3,
            injection_rate=0.06,
            seed=5,
            traffic=None,
        )
        sim.traffic.size_flits = 4
        layer = FaultLayer(UniformBer(1e-3), "none", seed=2).attach(sim)
        stats = sim.run(warmup=50, measure=300)
        assert stats.corrupted_deliveries > 0
        # The layer tracked at least one packet whose corrupted flit was
        # not the tail itself.
        assert len(layer._corrupted_packets) > 0

    def test_per_link_counters_sum_to_totals(self):
        sim = NocSimulator(3, injection_rate=0.08, seed=3)
        layer = FaultLayer(UniformBer(2e-3), "none", seed=1).attach(sim)
        sim.run(warmup=50, measure=300)
        per_link = layer.stats.per_link
        assert sum(c.faulty_attempts for c in per_link.values()) == (
            layer.stats.raw_faults
        )
        assert sum(c.transmitted_flits for c in per_link.values()) == (
            sim.stats.link_traversals
        )


class TestDropAbsorption:
    def test_drops_never_leak_credits(self):
        """Whole-packet drops on a dead link: flow control still resets."""
        sim = NocSimulator(3, injection_rate=0.08, seed=3)
        layer = FaultLayer(
            DeadLinks(victims=("1,1->1,2",), fail_cycle=60, mode="drop"),
            "none",
            seed=1,
        ).attach(sim)
        sim.run(warmup=50, measure=300)
        assert layer.stats.flits_dropped > 0
        _assert_flow_control_reset(sim)

    def test_backlog_under_heavy_drop_still_drains(self):
        """Hotspot traffic into a severed wire: packets keep flowing
        through (and being absorbed by) the dead link without wedging."""
        sim = NocSimulator(3, injection_rate=0.1, pattern="hotspot", seed=4)
        sim.traffic.size_flits = 3
        layer = FaultLayer(
            DeadLinks(victims=("1,0->1,1", "0,1->1,1"), fail_cycle=0, mode="drop"),
            "none",
            seed=1,
        ).attach(sim)
        stats = sim.run(warmup=40, measure=250, drain_limit=30_000)
        assert layer.stats.flits_dropped > 0
        # Multi-flit drops are whole-packet: dropped flit count is a
        # multiple of the packet size on those links.
        for token in ("1,0->1,1", "0,1->1,1"):
            assert layer.stats.per_link[token].dropped_flits % 3 == 0
        assert stats.delivered_count >= 0
        _assert_flow_control_reset(sim)


class TestInOrderDelivery:
    def test_retransmission_preserves_flit_order_on_the_wire(self):
        """Direct link-level check: even when the CRC retry loop delays
        individual flits by different amounts, arrivals stay in send
        order (the wire serializes)."""
        sim = NocSimulator(2, injection_rate=0.0, seed=1)
        protection = ProtectionConfig(protocol="crc", max_link_retries=16)
        FaultLayer(UniformBer(0.3), protection, seed=5).attach(sim)
        link = sim.links[0]
        packet = Packet(
            src=link.src,
            dests=frozenset({link.dst.node}),
            size_flits=5,
            inject_cycle=0,
        )
        flits = packet.flits()
        for cycle, flit in enumerate(flits):
            link.send(flit, 0, cycle)
        arrival_times = sorted(t for t, _f, _vc in link._in_flight)
        # Strictly monotone arrivals: no two flits land together, and
        # collecting them in time order yields the original sequence.
        assert arrival_times == sorted(set(arrival_times))
        collected = []
        for cycle in range(max(arrival_times) + 1):
            for flit, _vc in link.arrivals(cycle):
                collected.append(flit.seq)
        assert collected == [0, 1, 2, 3, 4]

    def test_end_to_end_order_with_crc_under_errors(self):
        """System-level: wormhole order violations raise ProtocolError,
        so a clean run under heavy retransmission is itself the check —
        plus flow control must fully reset."""
        config = NocConfig(n_vcs=2, vc_capacity=2)
        sim = NocSimulator(3, config=config, injection_rate=0.06, seed=8)
        sim.traffic.size_flits = 3
        layer = FaultLayer(UniformBer(5e-3), "crc", seed=3).attach(sim)
        stats = sim.run(warmup=40, measure=250, drain_limit=30_000)
        assert layer.stats.retransmissions > 0
        assert stats.corrupted_deliveries == 0  # CRC repaired everything
        delivered = [(d.src, d.dest, d.inject_cycle) for d in stats.deliveries]
        assert len(delivered) == len(set(delivered)), "duplicate delivery"
        _assert_flow_control_reset(sim)


class TestLinkEdgeCases:
    def test_link_without_channel_is_exact_wire(self):
        link = Link(src=(0, 0), dst=LinkEnd(node=(0, 1), port=None), latency=2)
        packet = Packet(
            src=(0, 0), dests=frozenset({(0, 1)}), size_flits=1, inject_cycle=0
        )
        flit = packet.flits()[0]
        link.send(flit, 0, 10)
        assert link.arrivals(11) == []
        assert link.arrivals(12) == [(flit, 0)]
        assert not link.busy

    def test_link_token_is_stable_identity(self):
        link = Link(src=(1, 2), dst=LinkEnd(node=(1, 3), port=None))
        assert link.token == "1,2->1,3"

    def test_reroute_requires_xy_routing(self):
        config = NocConfig(routing="o1turn")
        sim = NocSimulator(2, config=config, seed=1)
        with pytest.raises(ConfigurationError):
            FaultLayer(NoFaults(), "reroute").attach(sim)
