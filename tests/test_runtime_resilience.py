"""Chaos suite for the resilient execution layer (docs/RESILIENCE.md).

Workers that raise, sleep past their timeout, ignore ``SIGALRM`` and
hang, or die outright via ``os._exit`` — the executor must retry
deterministically, respawn the pool, quarantine poison tasks as
structured :class:`TaskFailure` records, and above all keep the
determinism contract: a run with retries/crashes/respawns is *bitwise
identical* to a clean run, for every ``n_jobs``.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from pathlib import Path

import pytest

from repro.errors import (
    ConfigurationError,
    ExecutionError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.runtime import (
    MISS,
    ParallelExecutor,
    ResilienceConfig,
    ResultCache,
    TaskFailure,
)

POISON = 3
ITEMS = list(range(8))


def _double(x: int) -> int:
    return x * 2


def _boom(x: int) -> int:
    if x == POISON:
        raise ValueError(f"poison {x}")
    return x * 2


def _flaky(arg: tuple[int, str]) -> int:
    """Fail the first attempt of every item, succeed after (via sentinel)."""
    x, sentinel_dir = arg
    marker = Path(sentinel_dir) / f"tried-{x}"
    if not marker.exists():
        marker.touch()
        raise RuntimeError(f"transient failure at {x}")
    return x * 2


def _sleepy(x: int) -> int:
    if x == POISON:
        time.sleep(30.0)
    return x * 2


def _hard_hang(x: int) -> int:
    """Defeat the soft timeout: only the parent watchdog can recover."""
    if x == POISON:
        signal.signal(signal.SIGALRM, signal.SIG_IGN)
        time.sleep(30.0)
    return x * 2


def _suicidal(x: int) -> int:
    if x == POISON:
        os._exit(42)
    return x * 2


def _fast_config(**overrides) -> ResilienceConfig:
    base = dict(max_retries=1, backoff_base=0.0)
    base.update(overrides)
    return ResilienceConfig(**base)


# --- config validation -----------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"timeout": 0.0},
        {"timeout": -1.0},
        {"hard_timeout": 0.0},
        {"max_retries": -1},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"watchdog_poll": 0.0},
    ],
)
def test_config_rejects_invalid(kwargs):
    with pytest.raises(ConfigurationError):
        ResilienceConfig(**kwargs)


def test_backoff_is_deterministic_and_capped():
    config = ResilienceConfig(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
    assert config.backoff(1) == pytest.approx(0.1)
    assert config.backoff(2) == pytest.approx(0.2)
    assert config.backoff(3) == pytest.approx(0.3)  # capped
    assert config.backoff(10) == pytest.approx(0.3)


def test_task_failure_is_picklable():
    failure = TaskFailure(3, "ValueError", "poison", "tb", 2, "exception")
    assert pickle.loads(pickle.dumps(failure)) == failure


# --- retries: bitwise parity -----------------------------------------------------------


@pytest.mark.parametrize("n_jobs", [1, 2, 4])
def test_retried_run_bitwise_identical_to_clean(tmp_path, n_jobs):
    """Every item fails once, then succeeds: the retried results must
    equal the clean reference exactly, for every worker count."""
    sentinel = tmp_path / f"jobs{n_jobs}"
    sentinel.mkdir()
    items = [(x, str(sentinel)) for x in ITEMS]
    clean = [x * 2 for x in ITEMS]

    executor = ParallelExecutor(n_jobs=n_jobs, resilience=_fast_config())
    assert executor.map(_flaky, items) == clean
    metrics = executor.last_metrics
    assert metrics.retries >= len(ITEMS)
    assert metrics.quarantined == 0
    assert metrics.failed_tasks == 0


def test_without_resilience_first_error_still_propagates():
    """resilience=None is the exact legacy contract."""
    with pytest.raises(ValueError, match="poison"):
        ParallelExecutor(n_jobs=1).map(_boom, ITEMS)


# --- quarantine ------------------------------------------------------------------------


@pytest.mark.parametrize("n_jobs", [1, 2])
def test_exhausted_task_quarantined_with_structured_record(n_jobs):
    executor = ParallelExecutor(n_jobs=n_jobs, resilience=_fast_config())
    out = executor.map(_boom, ITEMS)
    failure = out[POISON]
    assert isinstance(failure, TaskFailure)
    assert failure.index == POISON
    assert failure.error_type == "ValueError"
    assert f"poison {POISON}" in failure.message
    assert "ValueError" in failure.traceback
    assert failure.attempts == 2  # first try + one retry
    assert failure.kind == "exception"
    assert [v for i, v in enumerate(out) if i != POISON] == [
        x * 2 for x in ITEMS if x != POISON
    ]
    assert executor.last_metrics.quarantined == 1
    assert executor.last_metrics.failed_tasks == 1


@pytest.mark.parametrize("n_jobs", [1, 2])
def test_soft_timeout_cancels_hung_task(n_jobs):
    config = _fast_config(timeout=0.25)
    executor = ParallelExecutor(n_jobs=n_jobs, chunk_size=1, resilience=config)
    t0 = time.monotonic()
    out = executor.map(_sleepy, ITEMS)
    elapsed = time.monotonic() - t0
    failure = out[POISON]
    assert isinstance(failure, TaskFailure)
    assert failure.kind == "timeout"
    assert failure.error_type == "TaskTimeoutError"
    assert executor.last_metrics.timeouts == 2  # both attempts expired
    assert elapsed < 20.0  # nowhere near the 30s sleep
    assert [v for i, v in enumerate(out) if i != POISON] == [
        x * 2 for x in ITEMS if x != POISON
    ]


# --- worker death and hangs (process path only) ----------------------------------------


def test_worker_death_respawns_pool_and_quarantines_poison():
    executor = ParallelExecutor(n_jobs=2, chunk_size=2, resilience=_fast_config())
    out = executor.map(_suicidal, ITEMS)
    failure = out[POISON]
    assert isinstance(failure, TaskFailure)
    assert failure.kind == "crash"
    assert failure.error_type == "WorkerCrashError"
    assert failure.attempts == 2
    assert executor.pool_respawns >= 1
    assert executor.last_metrics.pool_respawns >= 1
    # Innocent chunk-mates of the poison task were re-enqueued and
    # completed — no collateral quarantine.
    assert [v for i, v in enumerate(out) if i != POISON] == [
        x * 2 for x in ITEMS if x != POISON
    ]


def test_sigalrm_immune_hang_caught_by_watchdog():
    config = _fast_config(timeout=0.2, hard_timeout=0.6)
    executor = ParallelExecutor(n_jobs=2, chunk_size=1, resilience=config)
    t0 = time.monotonic()
    out = executor.map(_hard_hang, ITEMS)
    elapsed = time.monotonic() - t0
    failure = out[POISON]
    assert isinstance(failure, TaskFailure)
    assert failure.kind == "hang"
    assert executor.pool_respawns >= 1
    assert elapsed < 20.0
    assert [v for i, v in enumerate(out) if i != POISON] == [
        x * 2 for x in ITEMS if x != POISON
    ]


# --- strict mode -----------------------------------------------------------------------


def test_strict_mode_raises_instead_of_quarantining():
    executor = ParallelExecutor(
        n_jobs=1, resilience=_fast_config(strict=True)
    )
    with pytest.raises(ExecutionError, match="poison"):
        executor.map(_boom, ITEMS)


def test_strict_timeout_raises_task_timeout():
    executor = ParallelExecutor(
        n_jobs=1, chunk_size=1, resilience=_fast_config(timeout=0.2, strict=True)
    )
    with pytest.raises(TaskTimeoutError):
        executor.map(_sleepy, ITEMS)


def test_strict_crash_raises_worker_crash():
    executor = ParallelExecutor(
        n_jobs=2, chunk_size=1, resilience=_fast_config(strict=True)
    )
    with pytest.raises(WorkerCrashError):
        executor.map(_suicidal, ITEMS)


# --- on_result hook --------------------------------------------------------------------


@pytest.mark.parametrize("n_jobs", [1, 2])
@pytest.mark.parametrize("resilient", [False, True])
def test_on_result_covers_every_item_exactly_once(n_jobs, resilient):
    seen: dict[int, int] = {}

    def on_result(indices, block):
        assert len(indices) == len(block)
        for i, value in zip(indices, block):
            assert i not in seen
            seen[i] = value

    executor = ParallelExecutor(
        n_jobs=n_jobs,
        chunk_size=3,
        resilience=_fast_config() if resilient else None,
    )
    out = executor.map(_double, ITEMS, on_result=on_result)
    assert out == [x * 2 for x in ITEMS]
    assert seen == {i: x * 2 for i, x in enumerate(ITEMS)}


def test_on_result_reports_quarantined_slots_too():
    seen: dict[int, object] = {}
    executor = ParallelExecutor(n_jobs=2, chunk_size=2, resilience=_fast_config())
    executor.map(_suicidal, ITEMS, on_result=lambda idx, blk: seen.update(zip(idx, blk)))
    assert set(seen) == set(range(len(ITEMS)))
    assert isinstance(seen[POISON], TaskFailure)


# --- ResultCache.put hardening (ISSUE satellite) ---------------------------------------


def test_cache_put_failure_counted_and_leaves_no_tmp(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)

    def exploding_dump(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr("repro.runtime.cache.pickle.dump", exploding_dump)
    cache.put("a" * 64, [1, 2, 3])  # must not raise
    assert cache.put_errors == 1
    assert "1 failed writes" in cache.summary()
    leftovers = [p for p in tmp_path.rglob("*.tmp")]
    assert leftovers == []
    monkeypatch.undo()
    # The cache still works after a failed write.
    cache.put("a" * 64, [1, 2, 3])
    assert cache.get("a" * 64) == [1, 2, 3]
    assert cache.put_errors == 1


def test_cache_put_keyboard_interrupt_still_propagates(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    monkeypatch.setattr(
        "repro.runtime.cache.pickle.dump",
        lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
    )
    with pytest.raises(KeyboardInterrupt):
        cache.put("b" * 64, 1)
    assert [p for p in tmp_path.rglob("*.tmp")] == []


# --- ResultCache.stats / prune (service satellite) -------------------------------------


def test_cache_stats_counts_entries_and_counters(tmp_path):
    cache = ResultCache(tmp_path)
    empty = cache.stats()
    assert (empty.entries, empty.total_bytes) == (0, 0)
    assert "0 entries" in empty.describe()

    cache.put("a" * 64, [1, 2, 3])
    cache.put("b" * 64, {"x": 1})
    assert cache.get("a" * 64) == [1, 2, 3]
    assert cache.get("c" * 64) is MISS

    stats = cache.stats()
    assert stats.entries == 2
    assert stats.total_bytes > 0
    assert (stats.hits, stats.misses, stats.put_errors) == (1, 1, 0)
    assert str(tmp_path) in stats.describe()


def test_cache_stats_sees_other_writers(tmp_path):
    """The store is shared: entries written by another handle (process)
    show up in on-disk stats even though the local counters are zero."""
    ResultCache(tmp_path).put("a" * 64, 1)
    fresh = ResultCache(tmp_path)
    stats = fresh.stats()
    assert stats.entries == 1
    assert (stats.hits, stats.misses) == (0, 0)


def test_cache_prune_by_age(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("a" * 64, 1)
    cache.put("b" * 64, 2)
    old = cache._path("a" * 64)
    now = time.time()
    os.utime(old, (now - 100.0, now - 100.0))

    assert cache.prune(max_age=50.0, now=now) == 1
    assert cache.get("a" * 64) is MISS  # pruned -> recomputable miss
    assert cache.get("b" * 64) == 2  # young entry survived
    assert cache.stats(now=now).entries == 1

    assert cache.prune(max_age=0.0, now=now + 1.0) == 1  # empties the rest
    assert cache.stats().entries == 0


def test_cache_prune_rejects_negative_age(tmp_path):
    with pytest.raises(ValueError, match="max_age"):
        ResultCache(tmp_path).prune(max_age=-1.0)
