"""Fault campaign: jobs-parity acceptance, energy crossover story, and
report plumbing."""

from __future__ import annotations

import math
import warnings
from dataclasses import asdict

import pytest

from repro.errors import ConfigurationError
from repro.fault import (
    EngineFallbackWarning,
    FaultCampaignConfig,
    format_fault_report,
    protection_crossover,
    run_fault_campaign,
)


@pytest.fixture(scope="module")
def campaign():
    config = FaultCampaignConfig(
        k=3,
        injection_rate=0.06,
        size_flits=2,
        warmup=30,
        measure=180,
        drain_limit=30_000,
        bers=(1e-5, 2e-3),
        protocols=("none", "crc", "e2e", "reroute"),
        seed=11,
    )
    return config, run_fault_campaign(config, n_jobs=1)


class TestJobsParity:
    """Acceptance: fixed seed -> bitwise-identical per-link error counts
    and identical summary stats, regardless of worker count."""

    def test_serial_and_parallel_are_bitwise_identical(self, campaign):
        config, serial = campaign
        parallel = run_fault_campaign(config, n_jobs=2)
        assert serial.points == parallel.points

    def test_per_link_counts_are_populated_and_consistent(self, campaign):
        _config, result = campaign
        for point in result.points:
            faulty = sum(f for _t, f, _n in point.per_link_errors)
            assert faulty == point.raw_faults
            assert len(point.per_link_ber_bounds) == len(point.per_link_errors)
            for (_t, f, n), bound in zip(
                point.per_link_errors, point.per_link_ber_bounds
            ):
                assert 0.0 < bound <= 1.0
                if n > 0:
                    assert bound >= f / n or math.isclose(bound, f / n)


class TestCrossoverStory:
    """The headline: unprotected wins at tiny BER, protection wins once
    raw errors start destroying payloads."""

    def test_none_cheapest_when_errors_are_rare(self, campaign):
        _config, result = campaign
        none_pt = result.point(1e-5, "none")
        crc_pt = result.point(1e-5, "crc")
        assert none_pt.effective_fj_per_bit_mm < crc_pt.effective_fj_per_bit_mm

    def test_crc_cheaper_than_none_at_high_ber(self, campaign):
        _config, result = campaign
        none_pt = result.point(2e-3, "none")
        crc_pt = result.point(2e-3, "crc")
        assert crc_pt.effective_fj_per_bit_mm < none_pt.effective_fj_per_bit_mm
        # And CRC actually repaired the traffic.
        assert crc_pt.corrupted_delivered == 0
        assert crc_pt.retransmissions > 0
        assert none_pt.corrupted_delivered > 0

    def test_crossover_detects_the_flip(self, campaign):
        _config, result = campaign
        assert protection_crossover(result, "crc", "none") == 2e-3
        assert protection_crossover(result, "none", "crc") == 1e-5

    def test_best_protocol(self, campaign):
        _config, result = campaign
        assert result.best_protocol(1e-5) == "none"
        best_high = result.best_protocol(2e-3)
        assert best_high in ("crc", "reroute", "e2e")

    def test_e2e_counters_populated_under_errors(self, campaign):
        _config, result = campaign
        point = result.point(2e-3, "e2e")
        assert point.completed_transfers > 0
        assert point.packet_retries > 0

    def test_offered_load_identical_across_protocols(self, campaign):
        """Same traffic seed everywhere: raw fault exposure differs only
        through protocol-induced extra traversals, and the none/e2e
        delivered counts come from the same offered packets."""
        _config, result = campaign
        none_lo = result.point(1e-5, "none")
        crc_lo = result.point(1e-5, "crc")
        # At 1e-5 essentially nothing retransmits in this short window,
        # so the two runs see the same traffic and deliver it all.
        assert none_lo.delivered == crc_lo.delivered


class TestPlumbing:
    def test_point_lookup_raises_on_unknown(self, campaign):
        _config, result = campaign
        with pytest.raises(ConfigurationError):
            result.point(0.5, "none")
        with pytest.raises(ConfigurationError):
            result.point(1e-5, "parity")

    def test_format_report_mentions_every_point(self, campaign):
        _config, result = campaign
        report = format_fault_report(result)
        for point in result.points:
            assert point.protocol in report
        assert "fJ/b/mm" in report

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FaultCampaignConfig(k=1)
        with pytest.raises(ConfigurationError):
            FaultCampaignConfig(bers=(2.0,))
        with pytest.raises(ConfigurationError):
            FaultCampaignConfig(protocols=("parity",))
        with pytest.raises(ConfigurationError):
            FaultCampaignConfig(injection_rate=0.0)

    def test_tasks_cover_grid(self):
        config = FaultCampaignConfig(bers=(1e-6, 1e-3), protocols=("none", "crc"))
        tasks = config.tasks()
        assert len(tasks) == 4
        assert (1e-6, "crc") in [(ber, proto) for _cfg, ber, proto in tasks]

    def test_points_contain_no_unstable_identifiers(self, campaign):
        """Parity depends on results being free of process-global state
        (packet ids, wall-clock): everything in a point must be a plain
        value derived from the simulation itself."""
        _config, result = campaign
        for point in result.points:
            for name in ("ber", "goodput", "avg_latency", "delivered"):
                assert getattr(point, name) is not None
            assert not hasattr(point, "packet_ids")
            assert not hasattr(point, "timestamp")


class TestMulticastEngineFallback:
    """engine='fast' + multicast must fall back *loudly* (naming the
    campaign's config hash), never silently — and the fallback run must
    equal an explicit reference-engine run bitwise."""

    CONFIG = dict(
        k=2,
        warmup=20,
        measure=60,
        bers=(1e-3,),
        protocols=("none",),
        seed=7,
        multicast_fraction=0.25,
        multicast_degree=2,  # a k=2 mesh has only 3 possible destinations
    )

    def test_fallback_warns_and_names_config_hash(self):
        config = FaultCampaignConfig(engine="fast", **self.CONFIG)
        with pytest.warns(EngineFallbackWarning) as record:
            assert config.effective_engine() == "reference"
        [warning] = record
        message = str(warning.message)
        assert config.content_hash()[:16] in message
        assert "multicast" in message

    def test_run_fault_campaign_warns_once(self):
        config = FaultCampaignConfig(engine="fast", **self.CONFIG)
        with pytest.warns(EngineFallbackWarning):
            run_fault_campaign(config)

    def test_fallback_matches_explicit_reference_bitwise(self):
        fast = FaultCampaignConfig(engine="fast", **self.CONFIG)
        reference = FaultCampaignConfig(engine="reference", **self.CONFIG)
        with pytest.warns(EngineFallbackWarning):
            fell_back = run_fault_campaign(fast)
        baseline = run_fault_campaign(reference)
        assert [asdict(p) for p in fell_back.points] == [
            asdict(p) for p in baseline.points
        ]

    def test_no_multicast_no_warning(self):
        config = FaultCampaignConfig(engine="fast", k=2, warmup=20,
                                     measure=60, seed=7)
        with warnings.catch_warnings():
            warnings.simplefilter("error", EngineFallbackWarning)
            assert config.effective_engine() == "fast"

    def test_reference_engine_never_warns(self):
        config = FaultCampaignConfig(engine="reference", **self.CONFIG)
        with warnings.catch_warnings():
            warnings.simplefilter("error", EngineFallbackWarning)
            assert config.effective_engine() == "reference"

    def test_multicast_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            FaultCampaignConfig(multicast_fraction=1.5)
        with pytest.raises(ConfigurationError):
            FaultCampaignConfig(multicast_fraction=-0.1)

    def test_multicast_changes_config_hash(self):
        base = FaultCampaignConfig(**self.CONFIG)
        bumped_fields = dict(self.CONFIG, multicast_fraction=0.5)
        assert base.content_hash() != \
            FaultCampaignConfig(**bumped_fields).content_hash()
