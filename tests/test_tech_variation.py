"""Global corners and local mismatch."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tech import (
    GlobalCorner,
    corner_sample,
    fixed_corners,
    monte_carlo_sample,
    nominal_sample,
    sample_global,
    sigma_vth_local,
    tech_45nm_soi,
    typical,
)
from repro.units import UM

TECH = tech_45nm_soi()


def test_typical_corner_is_neutral():
    tt = typical()
    assert tt.is_typical()
    assert tt.dvth_n == 0.0 and tt.dvth_p == 0.0


def test_fixed_corner_signs():
    corners = fixed_corners(TECH)
    assert corners["FF"].dvth_n < 0 and corners["FF"].dvth_p < 0
    assert corners["SS"].dvth_n > 0 and corners["SS"].dvth_p > 0
    assert corners["FS"].dvth_n < 0 < corners["FS"].dvth_p
    assert corners["SF"].dvth_p < 0 < corners["SF"].dvth_n
    assert corners["TT"].is_typical()


def test_fixed_corner_magnitude_is_three_sigma():
    corners = fixed_corners(TECH)
    assert corners["SS"].dvth_n == pytest.approx(3 * TECH.sigma_vth_global)


def test_corner_scaling():
    ss = fixed_corners(TECH)["SS"]
    half = ss.scaled(0.5)
    assert half.dvth_n == pytest.approx(0.5 * ss.dvth_n)


def test_global_sampling_statistics():
    rng = np.random.default_rng(0)
    draws = [sample_global(TECH, rng) for _ in range(4000)]
    dvn = np.array([d.dvth_n for d in draws])
    dvp = np.array([d.dvth_p for d in draws])
    assert abs(dvn.mean()) < 0.003
    assert dvn.std() == pytest.approx(TECH.sigma_vth_global, rel=0.1)
    rho = np.corrcoef(dvn, dvp)[0, 1]
    assert 0.2 < rho < 0.55  # rho_spec = 0.6 applied via common factor -> 0.36


def test_correlation_bounds_enforced():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        sample_global(TECH, rng, nmos_pmos_correlation=1.5)


def test_pelgrom_sigma_scales_with_area():
    s1 = sigma_vth_local(TECH, 1 * UM)
    s4 = sigma_vth_local(TECH, 4 * UM)
    assert s4 == pytest.approx(s1 / 2.0)


def test_pelgrom_length_parameter():
    s_min = sigma_vth_local(TECH, 1 * UM)
    s_long = sigma_vth_local(TECH, 1 * UM, length=4 * TECH.feature_size)
    assert s_long == pytest.approx(s_min / 2.0)


def test_nominal_sample_has_no_variation():
    sample = nominal_sample(TECH)
    assert sample.vth("devA", "n", 1 * UM) == pytest.approx(TECH.vth_n)
    assert sample.vth("devB", "p", 1 * UM) == pytest.approx(TECH.vth_p)


def test_corner_sample_applies_global_shift_only():
    sample = corner_sample(TECH, GlobalCorner("X", 0.03, -0.02))
    assert sample.vth("devA", "n", 1 * UM) == pytest.approx(TECH.vth_n + 0.03)
    assert sample.vth("devA", "p", 1 * UM) == pytest.approx(TECH.vth_p - 0.02)


def test_local_draws_are_memoized_per_device():
    sample = monte_carlo_sample(TECH, seed=42)
    a1 = sample.vth("stage0.m1", "n", 1 * UM)
    a2 = sample.vth("stage0.m1", "n", 1 * UM)
    b = sample.vth("stage1.m1", "n", 1 * UM)
    assert a1 == a2
    assert a1 != b


def test_monte_carlo_samples_reproducible():
    v1 = monte_carlo_sample(TECH, seed=7).vth("m1", "n", 1 * UM)
    v2 = monte_carlo_sample(TECH, seed=7).vth("m1", "n", 1 * UM)
    v3 = monte_carlo_sample(TECH, seed=8).vth("m1", "n", 1 * UM)
    assert v1 == v2
    assert v1 != v3


def test_invalid_polarity_rejected():
    sample = nominal_sample(TECH)
    with pytest.raises(ConfigurationError):
        sample.vth("dev", "z", 1 * UM)


@given(seed=st.integers(0, 2**31))
def test_local_shift_zero_when_disabled(seed):
    sample = monte_carlo_sample(TECH, seed=seed, local_enabled=False)
    assert sample.local_shift("any", 1 * UM) == 0.0
