"""Energy models: wires, links, baselines, router."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.energy import (
    KIM2010_DRIVER_AREA,
    RouterConfig,
    RouterPowerModel,
    bias_overhead,
    datapath_share,
    energy_vs_density,
    full_swing_energy_per_bit,
    full_swing_link_energy,
    kim2010,
    low_swing_energy_per_bit,
    mensink2010,
    park2012,
    seo2010,
    srlr_link_energy,
    table1_designs,
    this_work,
)
from repro.tech import tech_45nm_soi
from repro.units import MM, MW, UM

TECH = tech_45nm_soi()


# --- wire energy ------------------------------------------------------------------------


def test_low_swing_beats_full_swing(segment_1mm):
    low = low_swing_energy_per_bit(segment_1mm, vswing=0.3)
    full = full_swing_energy_per_bit(segment_1mm)
    assert low == pytest.approx(full * 0.3 / TECH.vdd, rel=1e-9)


def test_energy_linear_in_activity_and_swing(segment_1mm):
    e1 = low_swing_energy_per_bit(segment_1mm, 0.3, activity=0.25)
    e2 = low_swing_energy_per_bit(segment_1mm, 0.3, activity=0.5)
    e3 = low_swing_energy_per_bit(segment_1mm, 0.6, activity=0.5)
    assert e2 == pytest.approx(2 * e1)
    assert e3 == pytest.approx(2 * e2)


def test_miller_factor_scales_coupling_only(segment_1mm):
    quiet = low_swing_energy_per_bit(segment_1mm, 0.3, miller_factor=0.0)
    worst = low_swing_energy_per_bit(segment_1mm, 0.3, miller_factor=2.0)
    ground_only = 0.5 * segment_1mm.c_ground_per_m * segment_1mm.length * 0.3 * TECH.vdd
    assert quiet == pytest.approx(ground_only)
    assert worst > quiet


def test_energy_vs_density_tradeoff():
    pitches = [0.4 * UM, 0.6 * UM, 1.2 * UM]
    points = energy_vs_density(TECH, pitches, 4.1e9, 0.3, 10 * MM)
    densities = [p.bandwidth_density for p in points]
    energies = [p.energy_fj_per_bit_per_cm for p in points]
    assert densities[0] > densities[1] > densities[2]  # tighter pitch, denser
    assert energies[0] > energies[1] > energies[2]  # ...and more energy


def test_differential_halves_density():
    single = energy_vs_density(TECH, [0.6 * UM], 4.1e9, 0.3, 10 * MM, wires_per_signal=1)
    diff = energy_vs_density(TECH, [0.6 * UM], 4.1e9, 0.3, 10 * MM, wires_per_signal=2)
    assert diff[0].bandwidth_density == pytest.approx(single[0].bandwidth_density / 2)
    assert diff[0].energy_fj_per_bit_per_cm > single[0].energy_fj_per_bit_per_cm


def test_wire_energy_validation(segment_1mm):
    with pytest.raises(ConfigurationError):
        low_swing_energy_per_bit(segment_1mm, vswing=-0.1)
    with pytest.raises(ConfigurationError):
        low_swing_energy_per_bit(segment_1mm, 0.3, activity=2.0)


# --- link energy ------------------------------------------------------------------------


def test_headline_energy_within_band():
    report = srlr_link_energy()
    assert report.fj_per_bit_per_mm == pytest.approx(40.4, rel=0.15)
    assert report.fj_per_bit_per_cm == pytest.approx(404, rel=0.15)
    assert report.power / MW == pytest.approx(1.66, rel=0.15)


def test_headline_bandwidth_density_exact():
    report = srlr_link_energy()
    assert report.bandwidth_density_gbps_per_um == pytest.approx(6.83, rel=1e-3)


def test_full_swing_link_much_worse():
    srlr = srlr_link_energy()
    fs = full_swing_link_energy()
    assert 2.0 < fs.fj_per_bit_per_mm / srlr.fj_per_bit_per_mm < 6.0


def test_wire_fraction_dominates():
    assert srlr_link_energy().wire_fraction > 0.5


def test_bias_overhead_near_paper_value():
    report = bias_overhead(n_bits=64)
    assert report.fraction == pytest.approx(0.006, abs=0.003)


def test_bias_overhead_shrinks_with_width():
    f1 = bias_overhead(n_bits=1).fraction
    f64 = bias_overhead(n_bits=64).fraction
    assert f1 > f64


def test_link_energy_validation():
    with pytest.raises(ConfigurationError):
        srlr_link_energy(data_rate=0.0)
    with pytest.raises(ConfigurationError):
        srlr_link_energy(activity=0.0)
    with pytest.raises(ConfigurationError):
        bias_overhead(n_bits=0)


# --- baselines --------------------------------------------------------------------------


def test_table1_published_points_exact():
    rows = {d.key: d for d in table1_designs()}
    assert rows["mensink2010"].energy_fj_per_bit_per_cm == 340.0
    assert rows["kim2010_6g"].energy_fj_per_bit_per_cm == 630.0
    assert rows["seo2010"].energy_fj_per_bit_per_cm == 680.0
    assert rows["park2012"].energy_fj_per_bit_per_cm == 561.0
    assert rows["this_work"].energy_fj_per_bit_per_cm == 404.0
    assert rows["this_work"].signaling == "single-ended"
    assert rows["park2012"].needs_extra_supply


def test_this_work_has_best_density_of_table():
    designs = table1_designs()
    ours = designs[-1]
    assert all(
        ours.bandwidth_density_gbps_per_um >= d.bandwidth_density_gbps_per_um
        for d in designs
    )


def test_baseline_curve_passes_through_published_point():
    d = seo2010()
    e = d.energy_at_density(d.bandwidth_density_gbps_per_um)
    assert e == pytest.approx(d.energy_fj_per_bit_per_cm, rel=1e-9)


def test_baseline_curve_monotone_in_density():
    d = mensink2010()
    curve = d.energy_curve(n_points=7)
    energies = [e for _, e in curve]
    assert energies == sorted(energies)


def test_wire_pitch_backout():
    d = kim2010(high_rate=True)  # 6 Gb/s at 3 Gb/s/um, differential
    assert d.signal_pitch == pytest.approx(2.0 * UM)
    assert d.wire_pitch == pytest.approx(1.0 * UM)


def test_kim_driver_area_cited():
    assert KIM2010_DRIVER_AREA == pytest.approx(1760e-12)


def test_this_work_accepts_measured_energy():
    measured = this_work(393.0)
    assert measured.energy_fj_per_bit_per_cm == 393.0


def test_baseline_validation():
    with pytest.raises(ConfigurationError):
        park2012().energy_at_density(0.0)


# --- router -----------------------------------------------------------------------------


@pytest.fixture(scope="module")
def router_model():
    return RouterPowerModel()


def test_router_power_split_near_paper(router_model):
    p = router_model.power_breakdown(1.0, "srlr")
    assert p.buffers / MW == pytest.approx(38.8, rel=0.1)
    assert p.control / MW == pytest.approx(5.2, rel=0.1)
    assert p.datapath / MW == pytest.approx(12.9, rel=0.1)


def test_router_power_scales_with_utilization(router_model):
    idle = router_model.power_breakdown(0.0)
    busy = router_model.power_breakdown(1.0)
    assert idle.total < busy.total
    assert idle.buffers > 0  # leakage remains
    assert idle.datapath == 0.0


def test_full_swing_datapath_costs_more(router_model):
    srlr = router_model.power_breakdown(1.0, "srlr")
    fs = router_model.power_breakdown(1.0, "full_swing")
    assert 2.0 < fs.datapath / srlr.datapath < 6.0
    assert fs.buffers == srlr.buffers  # only the datapath changes


def test_router_area_matches_paper(router_model):
    area = router_model.area_breakdown()
    assert area.datapath * 1e6 == pytest.approx(0.0613, rel=0.02)
    assert area.total * 1e6 == pytest.approx(0.34, rel=0.1)
    assert area.datapath_fraction == pytest.approx(0.18, abs=0.03)


def test_router_crosspoint_count():
    cfg = RouterConfig(tech=TECH)
    assert cfg.crosspoints == 20  # the paper's 64 x 20 SRLR count


def test_router_power_validation(router_model):
    with pytest.raises(ConfigurationError):
        router_model.power_breakdown(1.5)
    with pytest.raises(ConfigurationError):
        router_model.datapath_energy_per_flit("optical")
    with pytest.raises(ConfigurationError):
        RouterConfig(tech=TECH, n_ports=0)


def test_published_breakdown_shares():
    assert datapath_share("RAW") == pytest.approx(69.0)
    assert datapath_share("TRIPS") == pytest.approx(64.0)
    assert datapath_share("TeraFLOPS") == pytest.approx(32.0)
    with pytest.raises(ConfigurationError):
        datapath_share("EPYC")
