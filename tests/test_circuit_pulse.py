"""Pulse representation, modulator and demodulator."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.circuit import Demodulator, Pulse, PulseModulator, PulseTrain
from repro.units import PS

BIT_PERIOD = 1.0 / 4.1e9


def test_pulse_basic_geometry():
    p = Pulse(1e-9, 100 * PS, 0.4)
    assert p.t_end == pytest.approx(1e-9 + 100 * PS)
    d = p.delayed(50 * PS)
    assert d.t_start == pytest.approx(1e-9 + 50 * PS)
    assert d.width == p.width


@pytest.mark.parametrize("kwargs", [
    {"t_start": 0.0, "width": 0.0, "amplitude": 0.4},
    {"t_start": 0.0, "width": 1e-10, "amplitude": -0.1},
])
def test_invalid_pulse_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        Pulse(**kwargs)


def test_train_enforces_ordering():
    train = PulseTrain()
    train.append(Pulse(0.0, 100 * PS, 0.4))
    with pytest.raises(ConfigurationError):
        train.append(Pulse(50 * PS, 100 * PS, 0.4))  # overlaps
    train.append(Pulse(200 * PS, 50 * PS, 0.4))
    assert len(train) == 2


def test_modulator_one_pulse_per_one():
    pm = PulseModulator(BIT_PERIOD, 150 * PS, 0.45)
    train = pm.modulate([1, 0, 1, 1, 0])
    assert len(train) == 3
    starts = [p.t_start for p in train]
    assert starts == pytest.approx([0.0, 2 * BIT_PERIOD, 3 * BIT_PERIOD])


def test_modulator_rejects_wide_pulse():
    with pytest.raises(ConfigurationError):
        PulseModulator(BIT_PERIOD, 2 * BIT_PERIOD, 0.45)


def test_modulator_rejects_bad_bits():
    pm = PulseModulator(BIT_PERIOD, 150 * PS, 0.45)
    with pytest.raises(ConfigurationError):
        pm.modulate([0, 2, 1])


def test_demodulator_roundtrip():
    pm = PulseModulator(BIT_PERIOD, 150 * PS, 0.45)
    dm = Demodulator(BIT_PERIOD, 8)
    bits = [1, 0, 1, 1, 0, 0, 1, 0]
    assert dm.demodulate(pm.modulate(bits)) == bits


def test_demodulator_removes_latency():
    pm = PulseModulator(BIT_PERIOD, 150 * PS, 0.45)
    dm = Demodulator(BIT_PERIOD, 4)
    bits = [1, 0, 0, 1]
    train = pm.modulate(bits)
    delayed = PulseTrain([p.delayed(2e-9) for p in train])
    assert dm.demodulate(delayed, latency=2e-9) == bits


@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=64))
def test_roundtrip_property(bits):
    pm = PulseModulator(BIT_PERIOD, 100 * PS, 0.4)
    dm = Demodulator(BIT_PERIOD, len(bits))
    assert dm.demodulate(pm.modulate(bits)) == bits


@given(
    bits=st.lists(st.integers(0, 1), min_size=1, max_size=32),
    latency=st.floats(0.0, 5e-9),
)
def test_roundtrip_with_latency_property(bits, latency):
    pm = PulseModulator(BIT_PERIOD, 100 * PS, 0.4)
    dm = Demodulator(BIT_PERIOD, len(bits))
    shifted = PulseTrain([p.delayed(latency) for p in pm.modulate(bits)])
    assert dm.demodulate(shifted, latency=latency) == bits
