"""Pareto machinery: dominance, sorting, crowding, hypervolume.

Analytic fronts with known non-dominated sets, hand-computed hypervolume
reference values, and property tests (via hypothesis) that the rank-0
front never contains a dominated point and that NSGA-II never *reports*
one.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    Nsga2Strategy,
    ParamSpace,
    Zdt1Evaluator,
    continuous,
    crowding_distance,
    dominates,
    hypervolume,
    non_dominated_sort,
    pareto_front_indices,
    run_dse,
    signed_vector,
)
from repro.errors import ConfigurationError


# --- dominance -------------------------------------------------------------------------


def test_dominates_basics():
    assert dominates((1.0, 1.0), (2.0, 2.0))
    assert dominates((1.0, 2.0), (1.0, 3.0))  # equal in one, better in other
    assert not dominates((1.0, 2.0), (2.0, 1.0))  # incomparable
    assert not dominates((1.0, 1.0), (1.0, 1.0))  # equal points don't dominate
    assert dominates((1.0, 1.0), (math.inf, math.inf))
    assert not dominates((math.inf, math.inf), (math.inf, math.inf))


def test_dominates_dimension_mismatch():
    with pytest.raises(ConfigurationError):
        dominates((1.0,), (1.0, 2.0))


# --- non-dominated sort: analytic fronts ----------------------------------------------


def test_non_dominated_sort_known_front():
    # Convex front {(0,4), (1,2), (3,1), (5,0)}; the rest are dominated.
    points = [
        (0.0, 4.0),  # front
        (1.0, 2.0),  # front
        (3.0, 1.0),  # front
        (5.0, 0.0),  # front
        (2.0, 3.0),  # dominated by (1,2)
        (4.0, 2.0),  # dominated by (3,1)
        (5.0, 5.0),  # dominated by everything on the front
    ]
    fronts = non_dominated_sort(points)
    assert fronts[0] == [0, 1, 2, 3]
    assert set(fronts[1]) == {4, 5}
    assert fronts[2] == [6]
    assert pareto_front_indices(points) == [0, 1, 2, 3]


def test_non_dominated_sort_all_incomparable():
    # Points on a line f1 + f2 = 1 are mutually non-dominated.
    points = [(i / 10.0, 1.0 - i / 10.0) for i in range(11)]
    assert pareto_front_indices(points) == list(range(11))


def test_non_dominated_sort_chain():
    # A strict dominance chain: every point is its own front.
    points = [(float(i), float(i)) for i in range(5)]
    fronts = non_dominated_sort(points)
    assert fronts == [[0], [1], [2], [3], [4]]


def test_pareto_front_empty():
    assert pareto_front_indices([]) == []


# --- crowding distance -----------------------------------------------------------------


def test_crowding_boundaries_infinite_interior_ordered():
    points = [(0.0, 4.0), (1.0, 2.0), (3.0, 1.0), (5.0, 0.0)]
    crowd = crowding_distance(points, [0, 1, 2, 3])
    assert crowd[0] == math.inf and crowd[3] == math.inf
    assert 0.0 < crowd[1] < math.inf and 0.0 < crowd[2] < math.inf
    # Interior distances: hand-computed normalized neighbor gaps.
    assert crowd[1] == pytest.approx((3 - 0) / 5 + (4 - 1) / 4)
    assert crowd[2] == pytest.approx((5 - 1) / 5 + (2 - 0) / 4)


def test_crowding_two_or_fewer_all_infinite():
    points = [(0.0, 1.0), (1.0, 0.0)]
    assert crowding_distance(points, [0, 1]) == {0: math.inf, 1: math.inf}


def test_crowding_degenerate_span_no_nan():
    # All points equal in one objective: that objective contributes 0.
    points = [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]
    crowd = crowding_distance(points, [0, 1, 2, 3])
    assert all(not math.isnan(v) for v in crowd.values())


def test_crowding_infinite_objectives_no_nan():
    points = [(math.inf, math.inf)] * 4
    crowd = crowding_distance(points, [0, 1, 2, 3])
    assert all(not math.isnan(v) for v in crowd.values())


# --- hypervolume: reference values -----------------------------------------------------


def test_hypervolume_single_point():
    # Box from (1, 1) to (3, 4): 2 x 3.
    assert hypervolume([(1.0, 1.0)], (3.0, 4.0)) == pytest.approx(6.0)


def test_hypervolume_two_point_union():
    # [1,3]x[2,3] U [2,3]x[1,3] = 2 + 2 - 1.
    assert hypervolume([(1.0, 2.0), (2.0, 1.0)], (3.0, 3.0)) == pytest.approx(3.0)


def test_hypervolume_staircase_reference_value():
    # Classic staircase: hand-computed 0.25 + 0.0625 + ... against (1,1).
    points = [(0.25, 0.75), (0.5, 0.5), (0.75, 0.25)]
    # Sweep: widths 0.25 each; heights 0.25, 0.5, 0.75.
    expected = 0.25 * 0.25 + 0.25 * 0.5 + 0.25 * 0.75
    assert hypervolume(points, (1.0, 1.0)) == pytest.approx(expected)


def test_hypervolume_dominated_points_do_not_add():
    base = [(1.0, 2.0), (2.0, 1.0)]
    with_dominated = base + [(2.5, 2.5), (2.0, 1.5)]
    assert hypervolume(with_dominated, (3.0, 3.0)) == pytest.approx(
        hypervolume(base, (3.0, 3.0))
    )


def test_hypervolume_point_outside_reference_contributes_nothing():
    assert hypervolume([(4.0, 4.0)], (3.0, 3.0)) == 0.0
    assert hypervolume([(3.0, 1.0)], (3.0, 3.0)) == 0.0  # on the boundary


def test_hypervolume_3d_reference_value():
    # Two cubes [1,2]^3 shifted: points (1,1,2) and (1,2,1) vs ref (2,2,2)
    # each dominate a 1x1x... region; union hand-computed.
    # (1,1,2): region [1,2]x[1,2]x... empty in z (2 !< 2) -> clipped out.
    assert hypervolume([(1.0, 1.0, 2.0)], (2.0, 2.0, 2.0)) == 0.0
    # (0,0,0) vs ref (1,1,1) is the unit cube.
    assert hypervolume([(0.0, 0.0, 0.0)], (1.0, 1.0, 1.0)) == pytest.approx(1.0)
    # Two staircase points in 3D: volumes 1*1*2 U 1*2*1 within [0,?]: use
    # points (0,0,1), (0,1,0) vs ref (1,2,2): regions 1x2x1 and 1x1x2,
    # intersection 1x1x1 -> union 4 - 1 = 3.
    assert hypervolume([(0.0, 0.0, 1.0), (0.0, 1.0, 0.0)], (1.0, 2.0, 2.0)) == pytest.approx(3.0)


def test_hypervolume_empty():
    assert hypervolume([], (1.0, 1.0)) == 0.0


def test_hypervolume_dimension_mismatch():
    with pytest.raises(ConfigurationError):
        hypervolume([(1.0, 2.0, 3.0)], (1.0, 1.0))


# --- property tests --------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.floats(0.0, 10.0, allow_nan=False),
            st.floats(0.0, 10.0, allow_nan=False),
            st.floats(0.0, 10.0, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_rank0_front_is_mutually_non_dominated(points):
    front = pareto_front_indices(points)
    assert front, "a non-empty set always has a non-dominated point"
    for i in front:
        assert not any(dominates(points[j], points[i]) for j in range(len(points)))
    # Everything outside the front is dominated by someone.
    for j in set(range(len(points))) - set(front):
        assert any(dominates(points[i], points[j]) for i in range(len(points)))


@given(
    st.lists(
        st.tuples(st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)),
        min_size=1,
        max_size=16,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_hypervolume_monotone_in_points(points):
    """Adding points never shrinks the dominated region."""
    ref = (2.0, 2.0)
    for k in range(1, len(points) + 1):
        assert hypervolume(points[:k], ref) <= hypervolume(points[: k + 1], ref) + 1e-12


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_property_nsga2_reported_front_never_dominated(seed):
    """NSGA-II's reported front contains no dominated point, any seed."""
    space = ParamSpace(tuple(continuous(f"x{i}", 0.0, 1.0) for i in range(3)))
    result = run_dse(
        space,
        Zdt1Evaluator(dimension=3),
        Nsga2Strategy(population=8, generations=3),
        base_seed=seed,
    )
    signed = result.signed_front()
    assert signed, "ZDT1 always has feasible points"
    for i, a in enumerate(signed):
        assert not any(dominates(b, a) for j, b in enumerate(signed) if j != i)
    # And the front is exactly the non-dominated subset of all records.
    all_signed = [
        signed_vector(result.objectives, r.objectives)
        for r in result.records
        if r.feasible
    ]
    front_keys = {tuple(v) for v in signed}
    for v in all_signed:
        if tuple(v) in front_keys:
            continue
        assert any(dominates(w, v) for w in signed)
