"""Parallel-vs-serial parity of the `repro.runtime` execution engine.

The whole value of the parallel runner rests on one property: for any
``n_jobs`` and any chunking, the results are *identical* to the serial
reference path.  These tests enforce it bitwise for `run_monte_carlo`
and `analysis.sweep`, plus the cache's hit/miss/corruption behavior and
the executor/seed-stream building blocks.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.analysis.sweep import grid_points, sweep, sweep_grid
from repro.mc import run_monte_carlo
from repro.runtime import (
    MISS,
    ParallelExecutor,
    ResultCache,
    SerialFallbackWarning,
    content_key,
    derived_seed,
    make_seeds,
    resolve_n_jobs,
    sequential_seeds,
    spawned_seeds,
    stable_token,
)

N_JOBS_GRID = [1, 2, 4]


# --- executor building blocks ----------------------------------------------------------


def _square(x):
    return x * x


def _metrics_of(x):
    return {"y": x * x, "z": -x}


def test_executor_preserves_order_any_jobs_any_chunking():
    items = list(range(23))
    expected = [_square(x) for x in items]
    for n_jobs in N_JOBS_GRID:
        for chunk_size in (None, 1, 3, 50):
            ex = ParallelExecutor(n_jobs=n_jobs, chunk_size=chunk_size)
            assert ex.map(_square, items) == expected


def test_executor_serial_path_is_plain_loop():
    ex = ParallelExecutor(n_jobs=1)
    assert ex.map(_square, [3, 1, 2]) == [9, 1, 4]
    assert ex.last_metrics.backend == "serial"
    assert ex.last_metrics.completed_tasks == 3


def test_executor_metrics_account_for_every_task():
    ex = ParallelExecutor(n_jobs=2, chunk_size=4)
    ex.map(_square, list(range(10)))
    m = ex.last_metrics
    assert m.total_tasks == 10
    assert m.completed_tasks == 10
    assert sum(c.n_tasks for c in m.chunks) == 10
    assert m.wall_time > 0.0
    assert m.throughput > 0.0
    assert "10/10 tasks" in m.summary()


def test_executor_progress_hook_fires_per_chunk():
    seen = []
    ex = ParallelExecutor(n_jobs=1, chunk_size=2, progress=lambda m: seen.append(m.completed_tasks))
    ex.map(_square, list(range(6)))
    assert seen == [2, 4, 6]


def test_executor_unpicklable_fn_falls_back_to_serial():
    captured = []  # closure => not picklable
    ex = ParallelExecutor(n_jobs=4)
    with pytest.warns(SerialFallbackWarning, match="cannot be pickled"):
        result = ex.map(lambda x: captured.append(x) or x + 1, [1, 2, 3])
    assert result == [2, 3, 4]
    assert ex.last_metrics.backend == "serial"
    assert captured == [1, 2, 3]
    # The fallback is observable after the fact, not just at warn time.
    assert ex.serial_fallbacks == 1
    assert ex.last_metrics.fallback_reason is not None
    assert "serial fallback" in ex.last_metrics.summary()


def test_executor_requested_serial_is_not_a_fallback():
    ex = ParallelExecutor(n_jobs=1)
    ex.map(lambda x: x, [1, 2])  # closure is fine on the serial path
    assert ex.serial_fallbacks == 0
    assert ex.last_metrics.fallback_reason is None


def test_executor_rejects_bad_chunk_size():
    with pytest.raises(ConfigurationError):
        ParallelExecutor(n_jobs=2, chunk_size=0).map(_square, [1, 2])


def test_resolve_n_jobs():
    assert resolve_n_jobs(3) == 3
    assert resolve_n_jobs(1) == 1
    assert resolve_n_jobs(None) >= 1
    assert resolve_n_jobs(0) >= 1
    assert resolve_n_jobs(-1) >= 1


# --- seed streams ----------------------------------------------------------------------


def test_sequential_seeds_match_legacy_scheme():
    assert sequential_seeds(2013, 5) == [2013, 2014, 2015, 2016, 2017]


def test_spawned_seeds_deterministic_and_distinct():
    a = spawned_seeds(7, 100)
    b = spawned_seeds(7, 100)
    assert a == b
    assert len(set(a)) == 100
    # Prefix stability: growing n extends the stream without moving it.
    assert spawned_seeds(7, 10) == a[:10]
    # Different base seeds give disjoint streams (the sequential scheme
    # fails exactly this: base 7 and base 8 share 99 of 100 seeds).
    assert not set(a) & set(spawned_seeds(8, 100))


def test_make_seeds_scheme_dispatch():
    assert make_seeds(5, 3, "sequential") == [5, 6, 7]
    assert make_seeds(5, 3, "spawn") == spawned_seeds(5, 3)
    with pytest.raises(ConfigurationError):
        make_seeds(5, 3, "nope")


# --- Monte Carlo parity ----------------------------------------------------------------


@pytest.fixture(scope="module")
def mc_serial(robust):
    return run_monte_carlo(robust, n_runs=24, base_seed=321, n_jobs=1)


@pytest.mark.parametrize("n_jobs", N_JOBS_GRID)
def test_run_monte_carlo_parallel_parity(robust, mc_serial, n_jobs):
    result = run_monte_carlo(robust, n_runs=24, base_seed=321, n_jobs=n_jobs)
    # Bitwise identity of the full McRun list, not just the aggregate.
    assert result.runs == mc_serial.runs
    assert result.error_probability == mc_serial.error_probability


@pytest.mark.parametrize("n_jobs", [2, 4])
def test_run_monte_carlo_spawn_scheme_parity(robust, n_jobs):
    serial = run_monte_carlo(robust, n_runs=12, base_seed=9, seed_scheme="spawn")
    parallel = run_monte_carlo(
        robust, n_runs=12, base_seed=9, seed_scheme="spawn", n_jobs=n_jobs
    )
    assert parallel.runs == serial.runs


def test_run_monte_carlo_chunking_does_not_change_results(robust, mc_serial):
    ex = ParallelExecutor(n_jobs=2, chunk_size=5)
    result = run_monte_carlo(robust, n_runs=24, base_seed=321, executor=ex)
    assert result.runs == mc_serial.runs


# --- sweep parity ----------------------------------------------------------------------


@pytest.mark.parametrize("n_jobs", N_JOBS_GRID)
def test_sweep_parallel_parity(n_jobs):
    serial = sweep("x", [1.0, 2.0, 3.0, 4.0, 5.0], _metrics_of, n_jobs=1)
    parallel = sweep("x", [1.0, 2.0, 3.0, 4.0, 5.0], _metrics_of, n_jobs=n_jobs)
    assert parallel == serial
    assert parallel.metrics["y"] == (1.0, 4.0, 9.0, 16.0, 25.0)


def test_sweep_closure_evaluator_warns_and_still_works_with_n_jobs():
    offset = 10.0  # closure capture => serial fallback, same answer
    with pytest.warns(SerialFallbackWarning):
        result = sweep("x", [1.0, 2.0], lambda x: {"y": x + offset}, n_jobs=4)
    assert result.metrics["y"] == (11.0, 12.0)


def test_sweep_validation_unchanged():
    with pytest.raises(ConfigurationError):
        sweep("x", [], _metrics_of)
    with pytest.raises(ConfigurationError):
        sweep("x", [1.0, 2.0], lambda x: {"y": 1.0} if x < 2 else {"z": 1.0})


# --- N-dimensional grid sweep -----------------------------------------------------------


def _metrics_of_point(point):
    return {"s": point["a"] + point["b"], "p": point["a"] * point["b"]}


def test_grid_points_row_major_order():
    points = grid_points({"a": [1.0, 2.0], "b": [10.0, 20.0, 30.0]})
    assert points == [
        {"a": 1.0, "b": 10.0},
        {"a": 1.0, "b": 20.0},
        {"a": 1.0, "b": 30.0},
        {"a": 2.0, "b": 10.0},
        {"a": 2.0, "b": 20.0},
        {"a": 2.0, "b": 30.0},
    ]


def test_grid_points_validation():
    with pytest.raises(ConfigurationError):
        grid_points({})
    with pytest.raises(ConfigurationError):
        grid_points({"a": [1.0], "b": []})


@pytest.mark.parametrize("n_jobs", N_JOBS_GRID)
def test_sweep_grid_parallel_parity(n_jobs):
    axes = {"a": [1.0, 2.0, 3.0], "b": [10.0, 20.0]}
    serial = sweep_grid(axes, _metrics_of_point, n_jobs=1)
    parallel = sweep_grid(axes, _metrics_of_point, n_jobs=n_jobs)
    assert parallel == serial
    assert serial.parameters == ("a", "b")
    assert serial.metrics["s"] == (11.0, 21.0, 12.0, 22.0, 13.0, 23.0)


def test_sweep_grid_rows_and_series():
    result = sweep_grid({"a": [1.0, 2.0], "b": [3.0]}, _metrics_of_point)
    assert result.headers() == ["a", "b", "p", "s"]
    assert result.rows() == [[1.0, 3.0, 3.0, 4.0], [2.0, 3.0, 6.0, 5.0]]
    assert result.series("p") == [({"a": 1.0, "b": 3.0}, 3.0), ({"a": 2.0, "b": 3.0}, 6.0)]
    with pytest.raises(ConfigurationError):
        result.series("nope")


def test_sweep_grid_closure_evaluator_warns_and_still_works():
    scale = 2.0
    with pytest.warns(SerialFallbackWarning):
        result = sweep_grid(
            {"a": [1.0, 2.0]}, lambda p: {"y": p["a"] * scale}, n_jobs=4
        )
    assert result.metrics["y"] == (2.0, 4.0)


def test_sweep_grid_key_mismatch_raises():
    with pytest.raises(ConfigurationError):
        sweep_grid(
            {"a": [1.0, 2.0]},
            lambda p: {"y": 1.0} if p["a"] < 2 else {"z": 1.0},
            n_jobs=1,
        )


# --- derived seeds ----------------------------------------------------------------------


def test_derived_seed_deterministic_and_token_sensitive():
    assert derived_seed(1, "tok") == derived_seed(1, "tok")
    assert derived_seed(1, "tok") != derived_seed(2, "tok")
    assert derived_seed(1, "tok") != derived_seed(1, "tok2")
    assert 0 <= derived_seed(1, "tok") < 2**64


# --- cache ------------------------------------------------------------------------------


def test_cache_miss_then_hit_roundtrip(tmp_path, robust):
    cache = ResultCache(tmp_path)
    first = run_monte_carlo(robust, n_runs=8, cache=cache)
    assert (cache.hits, cache.misses) == (0, 1)
    second = run_monte_carlo(robust, n_runs=8, cache=cache)
    assert (cache.hits, cache.misses) == (1, 1)
    assert second.runs == first.runs


def test_cache_key_covers_every_input(tmp_path, robust, straightforward):
    cache = ResultCache(tmp_path)
    run_monte_carlo(robust, n_runs=8, cache=cache)
    # Any input change must miss: design, die count, seed, seed scheme,
    # rate, local-variation toggle.
    run_monte_carlo(straightforward, n_runs=8, cache=cache)
    run_monte_carlo(robust, n_runs=9, cache=cache)
    run_monte_carlo(robust, n_runs=8, base_seed=99, cache=cache)
    run_monte_carlo(robust, n_runs=8, seed_scheme="spawn", cache=cache)
    run_monte_carlo(robust, n_runs=8, bit_period=1.0 / 3.0e9, cache=cache)
    run_monte_carlo(robust, n_runs=8, local_enabled=False, cache=cache)
    assert cache.hits == 0
    assert cache.misses == 7


def test_cache_corrupted_entry_recomputes(tmp_path, robust):
    cache = ResultCache(tmp_path)
    clean = run_monte_carlo(robust, n_runs=8, cache=cache)
    entries = list(tmp_path.rglob("*.pkl"))
    assert len(entries) == 1
    entries[0].write_bytes(b"not a pickle at all")
    recomputed = run_monte_carlo(robust, n_runs=8, cache=cache)
    assert recomputed.runs == clean.runs
    assert cache.corrupt == 1
    # The bad file was replaced by a clean entry: next call hits.
    hits_before = cache.hits
    run_monte_carlo(robust, n_runs=8, cache=cache)
    assert cache.hits == hits_before + 1


def test_cache_wrong_key_payload_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("a" * 64, [1, 2, 3])
    path = cache._path("a" * 64)
    target = cache._path("b" * 64)
    target.parent.mkdir(parents=True, exist_ok=True)
    path.rename(target)  # entry now lies about its key
    assert cache.get("b" * 64) is MISS
    assert cache.corrupt == 1


def test_cache_parallel_and_serial_share_entries(tmp_path, robust):
    serial_cache = ResultCache(tmp_path)
    serial = run_monte_carlo(robust, n_runs=10, cache=serial_cache)
    parallel = run_monte_carlo(robust, n_runs=10, n_jobs=4, cache=serial_cache)
    assert serial_cache.hits == 1  # n_jobs is not part of the physics key
    assert parallel.runs == serial.runs


def test_stable_token_is_content_only():
    assert stable_token((1, 2.0, "x")) == stable_token((1, 2.0, "x"))
    assert stable_token(1) != stable_token(1.0)
    assert stable_token({"a": 1, "b": 2}) == stable_token({"b": 2, "a": 1})
    assert content_key("x", 1) != content_key("x", 2)
    with pytest.raises(TypeError):
        stable_token(object())


def test_mc_runs_pickle_roundtrip(mc_serial):
    # Cache entries are pickled McRun lists; the dataclass must survive.
    assert pickle.loads(pickle.dumps(mc_serial.runs)) == mc_serial.runs
