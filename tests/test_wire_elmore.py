"""Elmore delay and full-swing repeater insertion (the baseline wire)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.tech import tech_45nm_soi
from repro.units import MM
from repro.wire import (
    elmore_delay,
    full_swing_energy_per_bit,
    optimal_repeaters,
    reference_segment,
    repeated_wire_delay,
    unit_inverter_c,
    unit_inverter_r,
)

TECH = tech_45nm_soi()


@pytest.fixture(scope="module")
def wire_10mm():
    return reference_segment(TECH, 10 * MM)


def test_elmore_delay_components(segment_1mm):
    base = elmore_delay(segment_1mm, r_drive=0.0, c_load=0.0)
    assert base == pytest.approx(0.38 * segment_1mm.resistance * segment_1mm.capacitance)
    driven = elmore_delay(segment_1mm, r_drive=500.0, c_load=0.0)
    assert driven > base


def test_elmore_negative_inputs_rejected(segment_1mm):
    with pytest.raises(ConfigurationError):
        elmore_delay(segment_1mm, r_drive=-1.0, c_load=0.0)


def test_unit_inverter_values_physical():
    r = unit_inverter_r(TECH)
    c = unit_inverter_c(TECH)
    assert 500.0 < r < 20000.0
    assert 1e-15 < c < 20e-15


def test_repeater_insertion_beats_unrepeated(wire_10mm):
    unrepeated = repeated_wire_delay(wire_10mm, 1, 30.0)
    design = optimal_repeaters(wire_10mm)
    assert design.n_repeaters > 1
    assert design.delay < unrepeated


def test_optimal_near_local_minimum(wire_10mm):
    design = optimal_repeaters(wire_10mm)
    k = design.n_repeaters
    h = design.size_factor
    around = [
        repeated_wire_delay(wire_10mm, max(1, k + dk), h)
        for dk in (-max(1, k // 3), 0, max(1, k // 3))
    ]
    assert around[1] <= min(around[0], around[2]) * 1.05


def test_full_swing_energy_exceeds_bare_wire(wire_10mm):
    e = full_swing_energy_per_bit(wire_10mm)
    bare = 0.5 * wire_10mm.capacitance * TECH.vdd**2
    assert e > bare  # repeater capacitance adds on top


def test_full_swing_energy_scales_with_activity(wire_10mm):
    e_half = full_swing_energy_per_bit(wire_10mm, activity=0.5)
    e_full = full_swing_energy_per_bit(wire_10mm, activity=1.0)
    assert e_full == pytest.approx(2 * e_half)


def test_invalid_repeater_args(wire_10mm):
    with pytest.raises(ConfigurationError):
        repeated_wire_delay(wire_10mm, 0, 10.0)
    with pytest.raises(ConfigurationError):
        repeated_wire_delay(wire_10mm, 2, 0.0)
    with pytest.raises(ConfigurationError):
        full_swing_energy_per_bit(wire_10mm, activity=1.5)
