"""Campaign store semantics: config-hash identity, leases, races.

Everything here drives :class:`repro.service.CampaignDB` directly with
explicit ``now=`` timestamps, so lease expiry is tested without
sleeping.  The two satellite guarantees under test:

* **identity** — resubmitting a byte-identical config reuses the
  existing rows (completed work is never recomputed); a changed config
  under the same name refuses to attach;
* **leasing** — an expired lease is claimable by another worker, and
  the lease-owner guard makes double completion impossible no matter
  how the race interleaves.
"""

from __future__ import annotations

import pytest

from repro.errors import CampaignMismatchError, ServiceError
from repro.service import (
    CampaignDB,
    campaign_config_key,
    canonical_config_json,
)

CONFIG = {"alpha": 1.5, "beta": [1, 2, 3], "name": "demo"}
TASKS = [(f"task/{i}", i, {"i": i}) for i in range(4)]


@pytest.fixture()
def db(tmp_path):
    with CampaignDB(tmp_path / "svc.sqlite") as handle:
        yield handle


def submit(db, name="c0", kind="demo", config=CONFIG, tasks=TASKS, now=100.0):
    return db.submit(name, kind, config, tasks, now=now)


# --- config-hash identity -------------------------------------------------------------


def test_submit_creates_rows(db):
    receipt = submit(db)
    assert receipt.created
    assert receipt.n_tasks == len(TASKS)
    assert receipt.n_done == 0
    assert receipt.config_key == campaign_config_key("demo", CONFIG)
    status = db.status("c0")[0]
    assert (status.n_open, status.n_done) == (len(TASKS), 0)


def test_resubmit_identical_config_is_noop(db):
    first = submit(db)
    # Complete one row, then resubmit the byte-identical config.
    [task] = db.lease("w0", now=100.0)
    assert db.complete("w0", task.campaign_id, task.task_key, {"v": 1})
    again = submit(db)
    assert not again.created
    assert again.campaign_id == first.campaign_id
    assert again.config_key == first.config_key
    assert again.n_tasks == len(TASKS)  # no duplicate rows
    assert again.n_done == 1  # completed work survived the resubmit


def test_resubmit_reordered_dict_is_same_identity(db):
    submit(db)
    reordered = {k: CONFIG[k] for k in reversed(list(CONFIG))}
    assert canonical_config_json(reordered) == canonical_config_json(CONFIG)
    receipt = submit(db, config=reordered)
    assert not receipt.created


def test_changed_config_refuses_to_attach(db):
    submit(db)
    changed = dict(CONFIG, alpha=1.5000001)
    with pytest.raises(CampaignMismatchError, match="refusing to attach"):
        submit(db, config=changed)
    # The refusal names both config hashes (truncated).
    with pytest.raises(CampaignMismatchError,
                       match=campaign_config_key("demo", CONFIG)[:16]):
        submit(db, config=changed)


def test_changed_kind_refuses_to_attach(db):
    submit(db)
    with pytest.raises(CampaignMismatchError):
        submit(db, kind="other")


def test_same_config_different_kind_different_key():
    assert campaign_config_key("a", CONFIG) != campaign_config_key("b", CONFIG)


def test_attach_inserts_only_missing_rows(db):
    submit(db, tasks=TASKS[:2])
    receipt = submit(db, tasks=TASKS)  # same config, fuller expansion
    assert receipt.n_tasks == len(TASKS)


# --- leasing and expiry ---------------------------------------------------------------


def test_lease_claims_in_index_order_and_bumps_attempts(db):
    submit(db)
    leased = db.lease("w0", n=2, now=100.0)
    assert [t.task_key for t in leased] == ["task/0", "task/1"]
    assert all(t.attempts == 1 for t in leased)
    assert db.leased_keys("w0") == [(leased[0].campaign_id, "task/0"),
                                    (leased[0].campaign_id, "task/1")]


def test_live_lease_is_not_claimable(db):
    submit(db)
    db.lease("w0", n=4, lease_seconds=60.0, now=100.0)
    assert db.lease("w1", n=4, now=150.0) == []


def test_expired_lease_returns_to_queue(db):
    submit(db, tasks=TASKS[:1])
    [task] = db.lease("w0", lease_seconds=60.0, now=100.0)
    # Before expiry: nothing for w1.  After: w1 claims the same row.
    assert db.lease("w1", now=159.0, campaign="c0") == []
    [reclaimed] = db.lease("w1", now=161.0, campaign="c0")
    assert reclaimed.task_key == task.task_key
    assert reclaimed.attempts == 2


def test_heartbeat_extends_only_owned_leases(db):
    submit(db, tasks=TASKS[:1])
    [task] = db.lease("w0", lease_seconds=10.0, now=100.0)
    held = [(task.campaign_id, task.task_key)]
    assert db.heartbeat("w0", held, lease_seconds=10.0, now=105.0) == 1
    # Extended to 115: still not claimable at 112.
    assert db.lease("w1", now=112.0) == []
    # A stranger heartbeating the same row extends nothing.
    assert db.heartbeat("w1", held, lease_seconds=100.0, now=105.0) == 0


def test_release_returns_leases_to_queue(db):
    submit(db)
    db.lease("w0", n=2, lease_seconds=60.0, now=100.0)
    assert db.release("w0") == 2
    assert len(db.lease("w1", n=4, now=101.0)) == 4


def test_lease_campaign_filter(db):
    submit(db, name="a")
    submit(db, name="b")
    leased = db.lease("w0", n=10, campaign="b", now=100.0)
    assert len(leased) == len(TASKS)
    assert all(t.campaign_name == "b" for t in leased)


def test_lease_size_validated(db):
    submit(db)
    with pytest.raises(ServiceError):
        db.lease("w0", n=0)


# --- completion races -----------------------------------------------------------------


def test_double_completion_impossible(db):
    """Two workers race on an expired lease: exactly one commit wins."""
    submit(db)
    [stale] = db.lease("w0", lease_seconds=5.0, now=100.0)
    [fresh] = db.lease("w1", lease_seconds=60.0, now=110.0)  # re-leases it
    assert fresh.task_key == stale.task_key
    # The evicted worker finishes late: its commit is rejected.
    assert not db.complete("w0", stale.campaign_id, stale.task_key, {"v": 0})
    assert db.complete("w1", fresh.campaign_id, fresh.task_key, {"v": 1})
    status = db.status("c0")[0]
    assert (status.n_done, status.n_leased) == (1, 0)
    assert db.payloads("c0")[stale.task_key] == {"v": 1}


def test_double_completion_impossible_reversed(db):
    """Same race, other interleaving: the re-leasing worker wins first,
    the evicted one's late commit still bounces (status is 'done')."""
    submit(db)
    [stale] = db.lease("w0", lease_seconds=5.0, now=100.0)
    [fresh] = db.lease("w1", lease_seconds=60.0, now=110.0)
    assert db.complete("w1", fresh.campaign_id, fresh.task_key, {"v": 1})
    assert not db.complete("w0", stale.campaign_id, stale.task_key, {"v": 0})
    assert db.payloads("c0")[stale.task_key] == {"v": 1}


def test_complete_requires_a_lease(db):
    receipt = submit(db)
    assert not db.complete("w0", receipt.campaign_id, "task/0", {"v": 1})
    assert db.status("c0")[0].n_done == 0


# --- failure, parking, retry ----------------------------------------------------------


def test_fail_requeues_until_attempts_exhausted(db):
    submit(db)
    [task] = db.lease("w0", now=100.0)
    assert db.fail("w0", task.campaign_id, task.task_key, "boom",
                   max_attempts=2) == "requeued"
    [task] = db.lease("w0", now=101.0, campaign="c0")
    assert task.attempts == 2
    assert db.fail("w0", task.campaign_id, task.task_key, "boom",
                   max_attempts=2) == "failed"
    status = db.status("c0")[0]
    assert status.n_failed == 1
    assert db.task_errors("c0") == [(task.task_key, "boom")]


def test_fail_after_losing_lease_is_lost(db):
    submit(db)
    [stale] = db.lease("w0", lease_seconds=5.0, now=100.0)
    db.lease("w1", lease_seconds=60.0, now=110.0)
    assert db.fail("w0", stale.campaign_id, stale.task_key, "boom") == "lost"


def test_retry_failed_requeues_and_resets_attempts(db):
    submit(db)
    [task] = db.lease("w0", now=100.0)
    db.fail("w0", task.campaign_id, task.task_key, "boom", max_attempts=1)
    assert db.retry_failed("c0") == 1
    [task] = db.lease("w0", now=101.0, campaign="c0")
    assert task.attempts == 1  # budget restarted
    assert db.status("c0")[0].n_failed == 0


# --- bookkeeping ----------------------------------------------------------------------


def test_record_worker_accumulates_counters(db):
    db.record_worker("w0", tasks_done=2, cache_put_errors=1, now=10.0)
    db.record_worker("w0", tasks_done=1, cache_hits=5, now=20.0)
    [worker] = db.workers()
    assert worker.worker_id == "w0"
    assert (worker.tasks_done, worker.cache_hits, worker.cache_put_errors) \
        == (3, 5, 1)
    assert (worker.started, worker.last_seen) == (10.0, 20.0)


def test_status_unknown_campaign_raises(db):
    with pytest.raises(ServiceError, match="no campaign"):
        db.status("ghost")


def test_payloads_ordered_by_task_index(db):
    submit(db)
    for task in reversed(db.lease("w0", n=4, now=100.0)):
        db.complete("w0", task.campaign_id, task.task_key,
                    {"i": task.task_index})
    assert list(db.payloads("c0")) == [k for k, _i, _s in TASKS]


def test_two_connections_share_state(tmp_path):
    """Two handles on the same file (as two worker processes would hold)
    observe each other's writes — the WAL-mode cross-process story."""
    path = tmp_path / "svc.sqlite"
    with CampaignDB(path) as a, CampaignDB(path) as b:
        submit(a)
        [task] = b.lease("w1", now=100.0)
        assert b.complete("w1", task.campaign_id, task.task_key, {"v": 1})
        assert a.status("c0")[0].n_done == 1


def test_incomplete_count(db):
    submit(db)
    assert db.incomplete_count() == len(TASKS)
    [task] = db.lease("w0", now=100.0)
    assert db.incomplete_count("c0") == len(TASKS)  # leased still pending
    db.complete("w0", task.campaign_id, task.task_key, {})
    assert db.incomplete_count() == len(TASKS) - 1
