"""Delay cells and the alternating plan (Section III-A)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.circuit import DelayCell, alternating_plan, single_plan
from repro.tech import (
    GlobalCorner,
    corner_sample,
    monte_carlo_sample,
    tech_45nm_soi,
)

TECH = tech_45nm_soi()


def test_nominal_delay_scales_with_buffers():
    assert DelayCell(12).nominal_delay() == pytest.approx(
        2 * DelayCell(6).nominal_delay()
    )


def test_delay_at_typical_matches_nominal(nominal):
    cell = DelayCell(6)
    assert cell.delay(nominal, "s0") == pytest.approx(cell.nominal_delay(), rel=1e-6)


def test_delay_slower_at_ss_faster_at_ff(nominal):
    cell = DelayCell(6)
    ss = corner_sample(TECH, GlobalCorner("SS", 0.09, 0.09))
    ff = corner_sample(TECH, GlobalCorner("FF", -0.09, -0.09))
    assert cell.delay(ss, "s0") > cell.delay(nominal, "s0")
    assert cell.delay(ff, "s0") < cell.delay(nominal, "s0")


def test_local_mismatch_jitters_delay_per_stage():
    cell = DelayCell(6)
    sample = monte_carlo_sample(TECH, seed=3)
    d0 = cell.delay(sample, "stage0")
    d1 = cell.delay(sample, "stage1")
    assert d0 != d1
    # but is reproducible for the same stage
    assert cell.delay(sample, "stage0") == d0


def test_single_plan_uniform():
    plan = single_plan()
    cells = {plan.cell_for_stage(i) for i in range(10)}
    assert len(cells) == 1
    assert plan.cell_for_stage(0).n_buffers == 6


def test_alternating_plan_alternates_and_preserves_mean():
    plan = alternating_plan(delta_fraction=0.05)
    long_cell = plan.cell_for_stage(0)
    short_cell = plan.cell_for_stage(1)
    assert long_cell.nominal_delay() > short_cell.nominal_delay()
    assert plan.cell_for_stage(2) is long_cell
    single = single_plan()
    assert plan.mean_nominal_delay == pytest.approx(single.mean_nominal_delay)


def test_alternating_long_first_flag():
    plan = alternating_plan(long_first=False)
    assert plan.cell_for_stage(0).nominal_delay() < plan.cell_for_stage(1).nominal_delay()


def test_invalid_configurations():
    with pytest.raises(ConfigurationError):
        DelayCell(0)
    with pytest.raises(ConfigurationError):
        DelayCell(6, buffer_delay=0.0)
    with pytest.raises(ConfigurationError):
        alternating_plan(delta_fraction=0.0)
    with pytest.raises(ConfigurationError):
        alternating_plan(delta_fraction=1.5)
    plan = single_plan()
    with pytest.raises(ConfigurationError):
        plan.cell_for_stage(-1)
