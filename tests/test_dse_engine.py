"""DSE engine: determinism across workers, caching, strategies, evaluators."""

from __future__ import annotations

import pytest

from repro.dse import (
    Fig8Evaluator,
    GridStrategy,
    InfeasibleDesign,
    LhsStrategy,
    Nsga2Strategy,
    Objective,
    ParamSpace,
    SearchStrategy,
    SizingEvaluator,
    Zdt1Evaluator,
    candidate_seed,
    continuous,
    fig8_space,
    hypervolume,
    make_strategy,
    run_dse,
    sizing_space,
)
from repro.analysis import sweep_grid
from repro.errors import ConfigurationError
from repro.runtime import ResultCache


def _space(d: int = 3) -> ParamSpace:
    return ParamSpace(tuple(continuous(f"x{i}", 0.0, 1.0) for i in range(d)))


def _exact(result) -> list[tuple]:
    return [
        (r.key, tuple(sorted(r.params.items())), r.seed, r.feasible,
         tuple(sorted(r.objectives.items())))
        for r in result.records
    ]


# --- determinism -----------------------------------------------------------------------


def test_bitwise_identical_across_worker_counts():
    """ISSUE acceptance: fixed seed => identical results for any n_jobs."""
    kwargs = dict(base_seed=17)
    serial = run_dse(_space(), Zdt1Evaluator(dimension=3),
                     Nsga2Strategy(population=8, generations=3), **kwargs)
    parallel = run_dse(_space(), Zdt1Evaluator(dimension=3),
                       Nsga2Strategy(population=8, generations=3),
                       n_jobs=4, **kwargs)
    assert _exact(serial) == _exact(parallel)
    assert serial.signed_front() == parallel.signed_front()


def test_candidate_seed_depends_on_params_not_order():
    a = candidate_seed(1, {"x": 0.25, "y": 2.0})
    assert a == candidate_seed(1, {"y": 2.0, "x": 0.25})  # key order irrelevant
    assert a != candidate_seed(1, {"x": 0.25, "y": 2.5})  # value matters
    assert a != candidate_seed(2, {"x": 0.25, "y": 2.0})  # base seed matters


def test_repeat_runs_identical():
    r1 = run_dse(_space(), Zdt1Evaluator(dimension=3), LhsStrategy(n_samples=12), base_seed=3)
    r2 = run_dse(_space(), Zdt1Evaluator(dimension=3), LhsStrategy(n_samples=12), base_seed=3)
    assert _exact(r1) == _exact(r2)
    r3 = run_dse(_space(), Zdt1Evaluator(dimension=3), LhsStrategy(n_samples=12), base_seed=4)
    assert _exact(r1) != _exact(r3)


# --- cache interaction -----------------------------------------------------------------


def test_result_cache_serves_second_run(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    kwargs = dict(base_seed=5, cache=cache)
    first = run_dse(_space(), Zdt1Evaluator(dimension=3),
                    LhsStrategy(n_samples=10), **kwargs)
    assert first.n_cache_hits == 0
    assert first.n_evaluated == 10
    second = run_dse(_space(), Zdt1Evaluator(dimension=3),
                     LhsStrategy(n_samples=10), **kwargs)
    assert second.n_cache_hits == 10
    assert second.n_evaluated == 0
    assert _exact(first) == _exact(second)


def test_cache_keys_separate_evaluators(tmp_path):
    """Same candidates, different evaluator config => no cross-contamination."""
    cache = ResultCache(tmp_path / "cache")
    r3 = run_dse(_space(), Zdt1Evaluator(dimension=3),
                 LhsStrategy(n_samples=6), base_seed=5, cache=cache)
    r4 = run_dse(_space(), Zdt1Evaluator(dimension=2),
                 LhsStrategy(n_samples=6), base_seed=5, cache=cache)
    assert r4.n_cache_hits == 0
    assert _exact(r3) != _exact(r4)


# --- strategies ------------------------------------------------------------------------


def test_grid_strategy_matches_sweep_grid():
    """One grid implementation: the strategy enumerates exactly the cells
    ``analysis.sweep.sweep_grid`` evaluates, in the same order."""
    space = ParamSpace((continuous("x0", 0.0, 1.0), continuous("x1", 0.0, 2.0)))
    result = run_dse(space, Zdt1Evaluator(dimension=2), GridStrategy(levels=3))
    grid = sweep_grid(
        {"x0": [0.0, 0.5, 1.0], "x1": [0.0, 1.0, 2.0]},
        lambda point: {},
    )
    assert [r.params for r in result.records] == [dict(p) for p in grid.points]


def test_make_strategy():
    assert isinstance(make_strategy("grid", levels=2), GridStrategy)
    assert isinstance(make_strategy("lhs", n_samples=4), LhsStrategy)
    assert isinstance(make_strategy("nsga2", population=4, generations=1), Nsga2Strategy)
    with pytest.raises(ConfigurationError):
        make_strategy("anneal")
    for name in ("grid", "lhs", "nsga2"):
        assert isinstance(make_strategy(name), SearchStrategy)


def test_nsga2_rejects_bad_shape():
    with pytest.raises(ConfigurationError):
        Nsga2Strategy(population=5, generations=1)  # odd
    with pytest.raises(ConfigurationError):
        Nsga2Strategy(population=2, generations=1)  # too small
    with pytest.raises(ConfigurationError):
        Nsga2Strategy(population=8, generations=0)


def test_nsga2_improves_over_its_initial_population():
    result = run_dse(_space(4), Zdt1Evaluator(dimension=4),
                     Nsga2Strategy(population=12, generations=6), base_seed=11)
    gen0 = [r for r in result.records if r.generation == 0]
    gen0_front = [
        (r.objectives["f1"], r.objectives["f2"]) for r in gen0 if r.feasible
    ]
    hv0 = hypervolume(gen0_front, (1.5, 10.0))
    hv_final = result.front_hypervolume((1.5, 10.0))
    assert hv_final > hv0


# --- constraint and infeasibility handling ---------------------------------------------


def test_constraint_violators_recorded_without_evaluation():
    space = ParamSpace(
        parameters=(continuous("x0", 0.0, 1.0), continuous("x1", 0.0, 1.0)),
        constraints=("x0 + x1 <= 0.8",),
    )
    # GridStrategy filters via space.grid before asking, so exercise LHS,
    # which deliberately keeps violators in its sample.
    result = run_dse(space, Zdt1Evaluator(dimension=2), LhsStrategy(n_samples=20))
    rejected = [r for r in result.records if r.reason == "violates space constraints"]
    assert rejected, "a 20-point LHS of the unit square must cross x0+x1=0.8"
    assert all(not r.feasible and r.objectives == {} for r in rejected)
    assert result.n_evaluated == 20 - len(rejected)
    # None of them can reach the front.
    front_keys = {r.key for r in result.front}
    assert front_keys.isdisjoint({r.key for r in rejected})


def test_model_infeasibility_recorded_with_reason():
    class GateEvaluator:
        objectives = (Objective("f", "min"),)

        def __call__(self, params, seed):
            if params["x0"] > 0.5:
                raise InfeasibleDesign("x0 too large")
            return {"f": params["x0"]}

    result = run_dse(
        ParamSpace((continuous("x0", 0.0, 1.0),)),
        GateEvaluator(),
        GridStrategy(levels=5),
    )
    reasons = {round(r.params["x0"], 2): r.reason for r in result.records}
    assert reasons == {0.0: "", 0.25: "", 0.5: "", 0.75: "x0 too large", 1.0: "x0 too large"}
    assert [r.params["x0"] for r in result.front] == [0.0]


# --- paper evaluators (single-point smoke; full studies live in the CLI/example) -------


def test_fig8_evaluator_paper_point():
    evaluator = Fig8Evaluator(mc_runs=16)
    space = fig8_space()
    params = {"nominal_swing": 0.30, "wire_pitch_um": 0.6}
    space.validate(params)
    metrics = evaluator(params, seed=candidate_seed(2013, params))
    assert metrics["energy_fj_per_bit_per_cm"] == pytest.approx(388, abs=10)
    assert metrics["bandwidth_density_gbps_per_um"] == pytest.approx(6.83, abs=0.05)
    assert 0.0 <= metrics["error_probability"] <= evaluator.max_error_probability


def test_fig8_evaluator_rejects_dead_design():
    evaluator = Fig8Evaluator(mc_runs=16)
    with pytest.raises(InfeasibleDesign):
        evaluator({"nominal_swing": 0.27, "wire_pitch_um": 0.45}, seed=1)


def test_sizing_evaluator_smoke():
    evaluator = SizingEvaluator()
    space = sizing_space()
    params = {
        "m1_width_um": 5.0,
        "m2_width_um": 0.3,
        "nominal_swing": 0.30,
        "driver_scale": 1.0,
    }
    space.validate(params)
    assert space.feasible(params)
    metrics = evaluator(params, seed=0)
    assert metrics["energy_fj_per_bit_per_mm"] > 0
    assert metrics["min_margin_mv"] > 0
    names = [o.name for o in evaluator.objectives]
    assert names == ["energy_fj_per_bit_per_mm", "min_margin_mv"]
