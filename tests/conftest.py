"""Shared fixtures.

Expensive objects (designs whose factories solve the wire fixed point,
instantiated links whose attenuation tables hit the global cache) are
session-scoped: the underlying models are immutable/deterministic, so
sharing them across tests is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.circuit import SRLRLink, robust_design, straightforward_design
from repro.circuit.prbs import PrbsGenerator, worst_case_patterns
from repro.tech import nominal_sample, tech_45nm_soi, tech_90nm_bulk
from repro.units import MM
from repro.wire import reference_segment

BIT_PERIOD_4G1 = 1.0 / 4.1e9


@pytest.fixture(scope="session")
def tech():
    return tech_45nm_soi()

@pytest.fixture(scope="session")
def tech90():
    return tech_90nm_bulk()


@pytest.fixture(scope="session")
def segment_1mm(tech):
    return reference_segment(tech, 1 * MM)


@pytest.fixture(scope="session")
def robust():
    return robust_design()


@pytest.fixture(scope="session")
def straightforward():
    return straightforward_design()


@pytest.fixture(scope="session")
def robust_link(robust):
    return SRLRLink(robust)


@pytest.fixture(scope="session")
def straightforward_link(straightforward):
    return SRLRLink(straightforward)


@pytest.fixture(scope="session")
def stress_pattern():
    return PrbsGenerator(7).bits(96) + worst_case_patterns()


@pytest.fixture(scope="session")
def nominal(tech):
    return nominal_sample(tech)
