"""The topology zoo: structure, routing and engine contracts per family.

Covers the edge cases the flat-mesh suite never sees:

* torus wraparound — every border node has four neighbors, and
  ``hop_distance`` takes the short way around each axis;
* concentrated-mesh endpoint mapping — every core lands on the router
  that owns its block, and same-router pairs never enter the network;
* chiplet hierarchy — no compass link crosses a chiplet boundary, the
  only inter-chiplet paths run gateway -> interface -> NoI mesh, and
  NoI links are priced ``noi_scale`` x longer;
* deadlock freedom — the routing channel-dependence graph of every
  topology class (and of up*/down* tables over degraded link sets) is
  acyclic;
* the factory's named validation errors, the fast-engine fallback
  warning, and flat-mesh bit-identity through the new Topology path.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.noc import (
    ChipletNoc,
    ConcentratedMesh,
    EngineFallbackWarning,
    MeshTopology,
    NocSimulator,
    SyntheticTraffic,
    TorusTopology,
    build_topology,
    next_port,
    routing_is_deadlock_free,
    unicast_path,
    updown_routing_table,
)
from repro.noc.topology import OPPOSITE, PORT_UP, Port

SEED = 7


# --- torus wraparound -------------------------------------------------------------------


def test_torus_every_node_has_four_compass_neighbors():
    topo = TorusTopology(4)
    for node in topo.nodes():
        neighbors = [
            topo.neighbor(node, p)
            for p in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST)
        ]
        assert None not in neighbors
        assert len(set(neighbors)) == 4


def test_torus_wraparound_neighbors():
    topo = TorusTopology(4)
    assert topo.neighbor((3, 1), Port.EAST) == (0, 1)
    assert topo.neighbor((0, 1), Port.WEST) == (3, 1)
    assert topo.neighbor((2, 3), Port.NORTH) == (2, 0)
    assert topo.neighbor((2, 0), Port.SOUTH) == (2, 3)


def test_torus_hop_distance_takes_the_short_way():
    topo = TorusTopology(5)
    # Axis distance 4 wraps to 1; the mesh would say 4.
    assert topo.hop_distance((0, 0), (4, 0)) == 1
    assert topo.hop_distance((0, 0), (0, 4)) == 1
    assert topo.hop_distance((0, 0), (4, 4)) == 2
    assert topo.hop_distance((0, 0), (2, 2)) == 4
    assert topo.diameter == 4
    mesh = MeshTopology(5)
    for a in topo.nodes():
        for b in topo.nodes():
            assert topo.hop_distance(a, b) <= mesh.hop_distance(a, b)


def test_torus_routes_reach_every_pair():
    topo = TorusTopology(4)
    for src in topo.nodes():
        for dest in topo.nodes():
            if src == dest:
                continue
            path = unicast_path(topo, src, dest)  # [(node, out_port), ...]
            assert path[0][0] == src
            last_node, last_port = path[-1]
            assert topo.neighbor(last_node, last_port) == dest


def test_torus_k2_rejected():
    with pytest.raises(ConfigurationError, match="k must be >= 3"):
        TorusTopology(2)


# --- concentrated mesh ------------------------------------------------------------------


def test_cmesh_router_network_is_the_flat_mesh():
    cmesh = ConcentratedMesh(3, c=4)
    mesh = MeshTopology(3)
    assert cmesh.nodes() == mesh.nodes()
    assert cmesh.links() == mesh.links()
    assert cmesh.directed_links() == mesh.directed_links()


def test_cmesh_endpoint_mapping_tiles_blocks():
    cmesh = ConcentratedMesh(2, c=4)  # (sx, sy) = (2, 2)
    assert cmesh.block == (2, 2)
    assert cmesh.endpoint_grid() == (4, 4)
    assert len(cmesh.endpoints()) == 16
    assert cmesh.endpoint_router((0, 0)) == (0, 0)
    assert cmesh.endpoint_router((1, 1)) == (0, 0)
    assert cmesh.endpoint_router((2, 0)) == (1, 0)
    assert cmesh.endpoint_router((3, 3)) == (1, 1)
    # Every router owns exactly c cores.
    owners = [cmesh.endpoint_router(e) for e in cmesh.endpoints()]
    assert all(owners.count(r) == 4 for r in cmesh.nodes())


def test_cmesh_non_square_concentration_factors_rectangularly():
    cmesh = ConcentratedMesh(2, c=2)
    assert cmesh.block == (2, 1)
    assert cmesh.endpoint_grid() == (4, 2)


def test_cmesh_out_of_grid_core_rejected():
    cmesh = ConcentratedMesh(2, c=4)
    with pytest.raises(ConfigurationError, match="outside"):
        cmesh.endpoint_router((4, 0))


def test_cmesh_same_router_pairs_stay_local():
    # At rate 1.0 every core fires every cycle; packets between cores of
    # one block must never be offered to the network.
    cmesh = ConcentratedMesh(2, c=4)
    traffic = SyntheticTraffic(cmesh, 1.0, "uniform", seed=SEED)
    for cycle in range(20):
        for packet in traffic.packets_for_cycle(cycle):
            (dest,) = packet.dests
            assert packet.src != dest


# --- chiplet NoC/NoI --------------------------------------------------------------------


def test_chiplet_no_compass_link_crosses_a_boundary():
    topo = ChipletNoc(chiplets_x=2, chiplets_y=2, chiplet_k=2)
    for src, port, dst in topo.links():
        if int(port) == PORT_UP:
            continue
        if topo.is_interface(src):
            assert topo.is_interface(dst)  # NoI mesh stays on interfaces
        else:
            assert topo.chiplet_of(src) == topo.chiplet_of(dst)


def test_chiplet_gateways_uplink_to_their_interface():
    topo = ChipletNoc(chiplets_x=2, chiplets_y=1, chiplet_k=2)
    for cx in range(2):
        gateway = topo.gateway_node(cx, 0)
        iface = topo.interface_node(cx, 0)
        assert topo.neighbor(gateway, PORT_UP) == iface
        assert topo.neighbor(iface, PORT_UP) == gateway
        # Non-gateway cores have no uplink.
    assert topo.neighbor((1, 1), PORT_UP) is None


def test_chiplet_inter_chiplet_route_passes_the_noi():
    topo = ChipletNoc(chiplets_x=2, chiplets_y=2, chiplet_k=2)
    path = unicast_path(topo, (0, 0), (3, 3))
    visited = [node for node, _port in path] + [(3, 3)]
    assert any(topo.is_interface(node) for node in visited)
    assert visited[0] == (0, 0) and visited[-1] == (3, 3)


def test_chiplet_heterogeneous_port_counts():
    topo = ChipletNoc(chiplets_x=2, chiplets_y=2, chiplet_k=2)
    assert PORT_UP in topo.node_ports(topo.gateway_node(0, 0))
    assert PORT_UP in topo.node_ports(topo.interface_node(0, 0))
    assert PORT_UP not in topo.node_ports((1, 1))


def test_chiplet_noi_links_are_longer():
    topo = ChipletNoc(chiplets_x=2, chiplets_y=1, chiplet_k=2, noi_scale=3.0)
    iface = topo.interface_node(0, 0)
    assert topo.link_scale(iface, Port.EAST) == 3.0
    assert topo.link_scale(iface, PORT_UP) == 1.0
    assert topo.link_scale((0, 0), PORT_UP) == 1.0
    assert topo.link_scale((0, 0), Port.EAST) == 1.0
    # route_mm prices the NoI crossing; the same-chiplet route does not.
    cross = topo.route_mm((1, 1), (2, 1))
    assert cross > topo.hop_distance((1, 1), (2, 1))
    assert topo.route_mm((0, 0), (1, 1)) == topo.hop_distance((0, 0), (1, 1))


def test_chiplet_endpoints_are_cores_only():
    topo = ChipletNoc(chiplets_x=2, chiplets_y=2, chiplet_k=2)
    endpoints = topo.endpoints()
    assert len(endpoints) == 16
    assert not any(topo.is_interface(e) for e in endpoints)
    assert len(topo.nodes()) == 16 + 4


# --- deadlock freedom -------------------------------------------------------------------

FAMILY = [
    ("mesh-xy", MeshTopology(4), "xy"),
    ("mesh-yx", MeshTopology(4), "yx"),
    ("cmesh", ConcentratedMesh(3, c=2), "xy"),
    ("torus-k3", TorusTopology(3), "xy"),
    ("torus-k4", TorusTopology(4), "xy"),
    ("torus-k5", TorusTopology(5), "xy"),
    ("chiplet-2x2", ChipletNoc(chiplets_x=2, chiplets_y=2, chiplet_k=2), "xy"),
    ("chiplet-3x1", ChipletNoc(chiplets_x=3, chiplets_y=1, chiplet_k=3), "xy"),
]


@pytest.mark.parametrize(
    "topology,order",
    [case[1:] for case in FAMILY],
    ids=[case[0] for case in FAMILY],
)
def test_routing_cdg_is_acyclic(topology, order):
    assert routing_is_deadlock_free(topology, order)


@settings(max_examples=20, deadline=None)
@given(
    k=st.integers(3, 5),
    drop=st.integers(0, 6),
    seed=st.integers(0, 1000),
)
def test_updown_table_stays_deadlock_free_with_links_down(k, drop, seed):
    """Property: up*/down* over any degraded-but-connected link set keeps
    every turn legal (up before down), hence acyclic routes."""
    import random

    topo = TorusTopology(k)
    rng = random.Random(seed)
    alive = {(src, port) for src, port, _dst in topo.links()}
    candidates = sorted(alive)
    rng.shuffle(candidates)
    for src, port in candidates[:drop]:
        alive.discard((src, port))
    table = updown_routing_table(topo.nodes(), topo._adjacency(), alive)
    # Walk every route; no loops (bounded walk) and every hop alive.
    nodes = topo.nodes()
    for dest in nodes:
        for src in nodes:
            port = table[dest].get(src)
            if src == dest or port is None:
                continue
            node, hops = src, 0
            while node != dest:
                port = table[dest][node]
                assert (node, port) in alive
                node = topo.neighbor(node, port)
                hops += 1
                assert hops <= 4 * len(nodes), "routing loop"


def test_o1turn_rejected_on_table_routed_topologies():
    from repro.noc import NocConfig

    with pytest.raises(ConfigurationError, match="o1turn"):
        NocSimulator(TorusTopology(4), config=NocConfig(routing="o1turn"))


# --- factory validation -----------------------------------------------------------------


def test_factory_unknown_kind_named():
    with pytest.raises(ConfigurationError, match="topology"):
        build_topology("hypercube", 4)


def test_factory_rejects_misapplied_parameters():
    with pytest.raises(ConfigurationError, match="concentration"):
        build_topology("mesh", 4, concentration=4)
    with pytest.raises(ConfigurationError, match="chiplets_x"):
        build_topology("torus", 4, chiplets_x=2)
    with pytest.raises(ConfigurationError, match="concentration"):
        build_topology("cmesh", 4)  # needs concentration >= 2


def test_factory_rejects_bad_chiplet_shape():
    with pytest.raises(ConfigurationError, match="chiplet_k"):
        build_topology("chiplet", 1, chiplets_x=2, chiplets_y=2)
    with pytest.raises(ConfigurationError, match="at least 2 chiplets"):
        build_topology("chiplet", 2)


# --- engine contracts -------------------------------------------------------------------


def test_chiplet_fast_engine_falls_back_with_warning():
    topo = ChipletNoc(chiplets_x=2, chiplets_y=1, chiplet_k=2)
    with pytest.warns(EngineFallbackWarning, match="chiplet"):
        sim = NocSimulator(topo, injection_rate=0.05, seed=SEED, engine="fast")
    assert sim.engine == "reference"
    assert type(sim) is NocSimulator


def test_fast_engine_supported_topologies_dispatch_silently():
    for topo in (MeshTopology(3), TorusTopology(3), ConcentratedMesh(2, c=2)):
        with warnings.catch_warnings():
            warnings.simplefilter("error", EngineFallbackWarning)
            sim = NocSimulator(
                topo, injection_rate=0.05, seed=SEED, engine="fast"
            )
        assert sim.engine == "fast"


def test_traffic_topology_mismatch_rejected():
    traffic = SyntheticTraffic(TorusTopology(4), 0.05, "uniform", seed=SEED)
    with pytest.raises(ConfigurationError, match="different topology"):
        NocSimulator(MeshTopology(4), traffic=traffic, seed=SEED)


def test_multicast_restricted_to_grid_endpoint_topologies():
    with pytest.raises(ConfigurationError, match="multicast"):
        SyntheticTraffic(
            ConcentratedMesh(2, c=2),
            0.05,
            "uniform",
            multicast_fraction=0.5,
            seed=SEED,
        )


# --- flat-mesh bit-identity through the Topology path -----------------------------------


def test_mesh_int_and_topology_constructions_identical():
    runs = []
    for spec in (4, MeshTopology(4), build_topology("mesh", 4)):
        sim = NocSimulator(spec, injection_rate=0.1, seed=SEED)
        stats = sim.run(warmup=20, measure=100)
        runs.append(
            (
                sim.cycle,
                stats.link_traversals,
                sorted(
                    (d.src, d.dest, d.inject_cycle, d.deliver_cycle)
                    for d in stats.deliveries
                ),
                [link.traversals for link in sim.links],
            )
        )
    assert runs[0] == runs[1] == runs[2]


def test_mesh_table_agrees_with_xy():
    from repro.noc.routing import xy_route

    mesh = MeshTopology(4)
    for src in mesh.nodes():
        for dest in mesh.nodes():
            if src == dest:
                continue
            assert next_port(mesh, src, dest, "xy") == xy_route(src, dest)
            path = unicast_path(mesh, src, dest)  # one entry per hop
            assert len(path) == mesh.hop_distance(src, dest)


def test_directed_links_reverse_ports_consistent():
    for topo in (
        MeshTopology(3),
        TorusTopology(3),
        ConcentratedMesh(2, c=2),
        ChipletNoc(chiplets_x=2, chiplets_y=1, chiplet_k=2),
    ):
        for src, port, dst, in_port in topo.directed_links():
            # The receiver sees the flit on in_port; walking back from
            # dst through in_port's neighbor entry must return to src.
            assert topo.neighbor(dst, in_port) == src
