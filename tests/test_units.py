"""Unit-conversion helpers: the paper's reporting units must be exact."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import (
    FJ,
    GBPS,
    MM,
    UM,
    fj_per_bit_per_cm,
    fj_per_bit_per_mm,
    gbps_per_um,
)


def test_fj_per_bit_per_mm_headline_point():
    # 404 fJ per bit over 10 mm is 40.4 fJ/bit/mm.
    assert fj_per_bit_per_mm(404 * FJ, 10 * MM) == pytest.approx(40.4)


def test_fj_per_bit_per_cm_is_ten_x_mm():
    assert fj_per_bit_per_cm(404 * FJ, 10 * MM) == pytest.approx(404.0)


def test_bandwidth_density_headline_point():
    # 4.1 Gb/s over a 0.6 um pitch is the paper's 6.83 Gb/s/um.
    assert gbps_per_um(4.1 * GBPS, 0.6 * UM) == pytest.approx(6.833, rel=1e-3)


@given(
    energy=st.floats(1e-18, 1e-9),
    length=st.floats(1e-5, 1e-1),
)
def test_cm_mm_ratio_invariant(energy, length):
    assert fj_per_bit_per_cm(energy, length) == pytest.approx(
        10.0 * fj_per_bit_per_mm(energy, length), rel=1e-12
    )


@given(rate=st.floats(1e6, 1e12), pitch=st.floats(1e-8, 1e-5))
def test_density_scales_inversely_with_pitch(rate, pitch):
    d1 = gbps_per_um(rate, pitch)
    d2 = gbps_per_um(rate, 2 * pitch)
    assert d1 == pytest.approx(2 * d2, rel=1e-9)


@pytest.mark.parametrize("bad", [0.0, -1e-3])
def test_nonpositive_lengths_rejected(bad):
    with pytest.raises(ValueError):
        fj_per_bit_per_mm(1e-15, bad)
    with pytest.raises(ValueError):
        gbps_per_um(1e9, bad)
