"""Property-based fuzzing of the NoC simulator.

Random mesh sizes, router configurations and traffic mixes; the protocol
invariants must hold for every combination:

* every offered packet is delivered to every destination exactly once;
* flits are conserved (buffer writes == reads after drain, up to taps);
* credits and VC ownership return to their reset state after drain;
* latency is bounded below by the XY pipeline minimum.

Beyond the end-state checks, a second family of tests steps randomized
configurations cycle by cycle and asserts *conservation invariants at
every cycle*: no flit created or destroyed outside inject/eject, per-VC
credits never negative or above capacity (and exactly accounting for the
flits downstream of them), and every measured packet delivered exactly
once against the offered ledger.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc import (
    MeshTopology,
    NocConfig,
    NocSimulator,
    SyntheticTraffic,
    build_topology,
)
from repro.noc.routing import unicast_path_hops
from repro.noc.topology import OPPOSITE, Port

configs = st.fixed_dictionaries(
    {
        "k": st.integers(2, 5),
        "n_vcs": st.sampled_from([2, 4]),
        "vc_capacity": st.integers(1, 4),
        "link_latency": st.integers(1, 2),
        "enable_taps": st.booleans(),
        "enable_bypass": st.booleans(),
        "routing": st.sampled_from(["xy", "o1turn"]),
        "rate": st.floats(0.01, 0.15),
        "pattern": st.sampled_from(["uniform", "transpose", "neighbor"]),
        "size_flits": st.integers(1, 3),
        "multicast_fraction": st.sampled_from([0.0, 0.3]),
        "seed": st.integers(0, 10_000),
    }
)


def _build(params, engine="reference"):
    topo = MeshTopology(params["k"])
    degree = min(3, topo.n_nodes - 1)
    multicast_fraction = params["multicast_fraction"] if degree >= 2 else 0.0
    traffic = SyntheticTraffic(
        topo,
        params["rate"],
        params["pattern"],
        size_flits=params["size_flits"],
        multicast_fraction=multicast_fraction,
        multicast_degree=max(degree, 2),
        seed=params["seed"],
    )
    config = NocConfig(
        n_vcs=params["n_vcs"],
        vc_capacity=params["vc_capacity"],
        link_latency=params["link_latency"],
        enable_taps=params["enable_taps"],
        enable_bypass=params["enable_bypass"],
        routing=params["routing"],
    )
    return NocSimulator(params["k"], config=config, traffic=traffic, engine=engine)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=configs)
def test_invariants_hold_for_random_configs(params):
    sim = _build(params)
    stats = sim.run(warmup=30, measure=120, drain_limit=20_000)

    # Delivery completeness: every (packet, dest) owed by the offered
    # packets arrives exactly once.  Count owed pairs from the NICs.
    delivered = [(d.packet_id, d.dest) for d in stats.deliveries]
    assert len(delivered) == len(set(delivered)), "duplicate delivery"

    # Conservation: everything written is read at least once; multicast
    # forks read the same buffered flit once per branch, so reads can
    # exceed writes exactly when multicasts exist.
    assert stats.buffer_reads >= stats.buffer_writes
    if params["multicast_fraction"] == 0.0:
        assert stats.buffer_reads == stats.buffer_writes

    # Flow control returned to reset.
    for router in sim.routers.values():
        for out in router.outputs.values():
            assert out.credits == [sim.config.vc_capacity] * sim.config.n_vcs
            assert all(owner is None for owner in out.owner)
        for port in router.inputs.values():
            assert port.occupancy == 0

    # Latency floor: at least the XY hop pipeline for any delivery.
    for d in stats.deliveries[:50]:
        assert d.latency >= 1


@settings(max_examples=10, deadline=None)
@given(
    k=st.integers(2, 4),
    seed=st.integers(0, 1000),
    rate=st.floats(0.02, 0.1),
)
def test_same_seed_same_world(k, seed, rate):
    a = NocSimulator(k, injection_rate=rate, seed=seed).run(warmup=20, measure=100)
    b = NocSimulator(k, injection_rate=rate, seed=seed).run(warmup=20, measure=100)
    assert a.link_traversals == b.link_traversals
    # Packet ids come from a process-global counter, so compare the
    # structural identity of each delivery instead.
    key_a = [(d.dest, d.inject_cycle, d.deliver_cycle) for d in a.deliveries]
    key_b = [(d.dest, d.inject_cycle, d.deliver_cycle) for d in b.deliveries]
    assert key_a == key_b


# --- per-cycle conservation invariants -------------------------------------------------
#
# The checks below run after *every* simulator cycle, not just at drain:
# a transient credit leak or a flit duplicated for one cycle and then
# reabsorbed would pass the end-state tests but fail these.


def _staged_count(router, port, vc_idx):
    return sum(1 for _, p, v in router._staged if p == port and v == vc_idx)


def _check_credit_conservation(sim):
    """Per-VC credits within [0, capacity] and exactly accounting for
    every flit downstream of the credit counter."""
    cap = sim.config.vc_capacity
    links_by_src_port = {
        (link.src, OPPOSITE[link.dst.port]): link for link in sim.links
    }
    for node, router in sim.routers.items():
        for port, out in router.outputs.items():
            link = links_by_src_port[(node, port)]
            downstream = sim.routers[link.dst.node]
            for vc in range(sim.config.n_vcs):
                credits = out.credits[vc]
                assert 0 <= credits <= cap, f"credits out of range: {credits}"
                in_flight = sum(1 for _, _, v in link._in_flight if v == vc)
                buffered = downstream.inputs[link.dst.port].vcs[vc].occupancy
                staged = _staged_count(downstream, link.dst.port, vc)
                assert cap - credits == in_flight + buffered + staged, (
                    f"credit leak at {node}->{link.dst.node} vc{vc}: "
                    f"{cap - credits} consumed vs {in_flight}+{buffered}+{staged}"
                )
                if out.owner[vc] is None:
                    # A free VC has nothing resident: all credits home.
                    assert credits == cap
    for node, nic in sim.nics.items():
        router = sim.routers[node]
        for vc in range(sim.config.n_vcs):
            credits = nic.out.credits[vc]
            assert 0 <= credits <= cap
            buffered = router.inputs[Port.LOCAL].vcs[vc].occupancy
            staged = _staged_count(router, Port.LOCAL, vc)
            assert cap - credits == buffered + staged


def _resident_flits(sim):
    """Every flit currently alive inside the network fabric."""
    count = 0
    for router in sim.routers.values():
        count += len(router._staged)
        for port in router.inputs.values():
            count += port.occupancy
    for link in sim.links:
        count += len(link._in_flight)
    return count


def _check_flit_conservation(sim):
    """Unicast traffic: injected == resident + ejected, every cycle.

    (Multicast legitimately copies flits at route forks and absorbs them
    at taps, so the strict form of "no flit created or destroyed outside
    inject/eject" is a unicast invariant.)
    """
    stats = sim.stats
    resident = _resident_flits(sim)
    assert stats.injected_flits == resident + stats.ejections, (
        f"flit conservation broken: injected {stats.injected_flits} != "
        f"resident {resident} + ejected {stats.ejections}"
    )


unicast_configs = st.fixed_dictionaries(
    {
        "k": st.integers(2, 4),
        "n_vcs": st.sampled_from([2, 4]),
        "vc_capacity": st.integers(1, 4),
        "link_latency": st.integers(1, 2),
        "enable_bypass": st.booleans(),
        "routing": st.sampled_from(["xy", "o1turn"]),
        "rate": st.floats(0.01, 0.12),
        "pattern": st.sampled_from(["uniform", "transpose", "neighbor"]),
        "size_flits": st.integers(1, 3),
        "seed": st.integers(0, 10_000),
    }
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=unicast_configs)
def test_conservation_invariants_every_cycle(params):
    sim = _build(
        {**params, "enable_taps": False, "multicast_fraction": 0.0}
    )

    # Ledger of owed (packet, dest) pairs, recorded at offer time.
    owed: list[tuple[int, tuple[int, int]]] = []
    for nic in sim.nics.values():
        original = nic.offer

        def offer(packet, _original=original):
            owed.extend((packet.packet_id, d) for d in packet.dests)
            _original(packet)

        nic.offer = offer

    sim.stats.measure_start, sim.stats.measure_end = 0, 150
    for _ in range(150):
        sim.step()
        _check_credit_conservation(sim)
        _check_flit_conservation(sim)

    # Drain with the invariants still enforced each cycle.
    sim.traffic.injection_rate = 0.0
    for _ in range(20_000):
        if not sim._network_busy():
            break
        sim.step()
        _check_credit_conservation(sim)
        _check_flit_conservation(sim)
    assert not sim._network_busy(), "network failed to drain"

    # Delivered-exactly-once against the offered ledger.
    delivered = [(d.packet_id, d.dest) for d in sim.stats.deliveries]
    assert len(delivered) == len(set(delivered)), "duplicate delivery"
    assert sorted(delivered) == sorted(owed), "delivery ledger mismatch"


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=configs)
def test_credit_bounds_every_cycle_with_multicast(params):
    # The strict flit ledger is unicast-only, but credit bounds and the
    # credit/occupancy accounting must hold under forks and taps too.
    sim = _build(params)
    sim.stats.measure_start, sim.stats.measure_end = 0, 120
    for _ in range(120):
        sim.step()
        _check_credit_conservation(sim)


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(2, 5),
    src=st.tuples(st.integers(0, 4), st.integers(0, 4)),
    dest=st.tuples(st.integers(0, 4), st.integers(0, 4)),
)
def test_single_packet_latency_scales_with_distance(k, src, dest):
    topo = MeshTopology(k)
    if not (topo.contains(src) and topo.contains(dest)) or src == dest:
        return
    from repro.noc import Packet

    sim = NocSimulator(k, injection_rate=0.0)
    sim.stats.measure_start, sim.stats.measure_end = 0, 500
    sim.nics[src].offer(
        Packet(src=src, dests=frozenset({dest}), size_flits=1, inject_cycle=0)
    )
    for _ in range(400):
        sim.step()
        if not sim._network_busy():
            break
    assert sim.stats.delivered_count == 1
    hops = unicast_path_hops(topo, src, dest)
    latency = sim.stats.deliveries[0].latency
    # Min: one pipeline traversal per hop; max: generous zero-load bound.
    assert hops <= latency <= 10 * (hops + 3)


# --- fast-engine per-cycle conservation ------------------------------------------------
#
# The struct-of-arrays engine keeps its state in flat rings instead of
# router/VC objects, so the invariant checkers above cannot see inside
# it.  These mirrors read the flat arrays directly: per-slot credits
# exactly account for every flit downstream of them (buffered + staged
# by a NIC + in flight on a link), and the unicast flit ledger balances
# after every cycle.  Randomized configurations, same strategy space as
# the reference checks.


def _fast_resident_flits(sim):
    return (
        sum(sim._count)
        + len(sim._nic_staged)
        + sum(len(bucket) for bucket in sim._arrivals.values())
    )


def _check_fast_credit_conservation(sim):
    cap = sim.config.vc_capacity
    staged_to: dict[int, int] = {}
    for s, _flit, _fl, _di in sim._nic_staged:
        staged_to[s] = staged_to.get(s, 0) + 1
    arriving_to: dict[int, int] = {}
    link_dst_base = sim._link_dst_base
    for bucket in sim._arrivals.values():
        for li, _flit, vc, _fl, _di in bucket:
            s = link_dst_base[li] + vc
            arriving_to[s] = arriving_to.get(s, 0) + 1
    for s, credits in enumerate(sim._credits):
        assert 0 <= credits <= cap, f"slot {s}: credits out of range: {credits}"
        downstream = (
            sim._count[s] + staged_to.get(s, 0) + arriving_to.get(s, 0)
        )
        assert cap - credits == downstream, (
            f"credit leak at slot {s}: {cap - credits} consumed vs "
            f"{downstream} downstream"
        )
        if not sim._owned[s]:
            # A free VC has nothing resident: all credits home.
            assert credits == cap, f"free slot {s} missing credits"


def _check_fast_flit_conservation(sim):
    stats = sim.stats
    resident = _fast_resident_flits(sim)
    assert stats.injected_flits == resident + stats.ejections, (
        f"flit conservation broken: injected {stats.injected_flits} != "
        f"resident {resident} + ejected {stats.ejections}"
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=unicast_configs)
def test_fast_engine_conservation_invariants_every_cycle(params):
    sim = _build(
        {**params, "enable_taps": False, "multicast_fraction": 0.0},
        engine="fast",
    )

    owed: list[tuple[int, tuple[int, int]]] = []
    for nic in sim.nics.values():
        original = nic.offer

        def offer(packet, _original=original):
            owed.extend((packet.packet_id, d) for d in packet.dests)
            _original(packet)

        nic.offer = offer

    sim.stats.measure_start, sim.stats.measure_end = 0, 150
    for _ in range(150):
        sim.step()
        _check_fast_credit_conservation(sim)
        _check_fast_flit_conservation(sim)

    sim.traffic.injection_rate = 0.0
    for _ in range(20_000):
        if not sim._network_busy():
            break
        sim.step()
        _check_fast_credit_conservation(sim)
        _check_fast_flit_conservation(sim)
    assert not sim._network_busy(), "network failed to drain"

    delivered = [(d.packet_id, d.dest) for d in sim.stats.deliveries]
    assert len(delivered) == len(set(delivered)), "duplicate delivery"
    assert sorted(delivered) == sorted(owed), "delivery ledger mismatch"


# --- topology-family conservation fuzz -------------------------------------------------
#
# The same invariants, fuzzed across every fast-engine-supported
# topology class (mesh, concentrated mesh, torus).  Table-routed
# topologies pin routing to "xy" (the table override); patterns stay in
# the subset every endpoint grid supports.

family_configs = st.fixed_dictionaries(
    {
        "spec": st.sampled_from(
            [
                ("mesh", 3, {}),
                ("mesh", 4, {}),
                ("torus", 3, {}),
                ("torus", 4, {}),
                ("cmesh", 2, {"concentration": 2}),
                ("cmesh", 2, {"concentration": 4}),
                ("cmesh", 3, {"concentration": 2}),
            ]
        ),
        "n_vcs": st.sampled_from([2, 4]),
        "vc_capacity": st.integers(1, 4),
        "link_latency": st.integers(1, 2),
        "enable_bypass": st.booleans(),
        "rate": st.floats(0.01, 0.10),
        "pattern": st.sampled_from(["uniform", "neighbor"]),
        "size_flits": st.integers(1, 3),
        "seed": st.integers(0, 10_000),
    }
)


def _build_family(params, engine):
    kind, k, builder_kwargs = params["spec"]
    topo = build_topology(kind, k, **builder_kwargs)
    traffic = SyntheticTraffic(
        topo,
        params["rate"],
        params["pattern"],
        size_flits=params["size_flits"],
        seed=params["seed"],
    )
    config = NocConfig(
        n_vcs=params["n_vcs"],
        vc_capacity=params["vc_capacity"],
        link_latency=params["link_latency"],
        enable_bypass=params["enable_bypass"],
    )
    return NocSimulator(topo, config=config, traffic=traffic, engine=engine)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=family_configs)
def test_family_fast_engine_conservation_every_cycle(params):
    sim = _build_family(params, engine="fast")

    owed: list[tuple[int, tuple[int, int]]] = []
    for nic in sim.nics.values():
        original = nic.offer

        def offer(packet, _original=original):
            owed.extend((packet.packet_id, d) for d in packet.dests)
            _original(packet)

        nic.offer = offer

    sim.stats.measure_start, sim.stats.measure_end = 0, 120
    for _ in range(120):
        sim.step()
        _check_fast_credit_conservation(sim)
        _check_fast_flit_conservation(sim)

    sim.traffic.injection_rate = 0.0
    for _ in range(20_000):
        if not sim._network_busy():
            break
        sim.step()
        _check_fast_credit_conservation(sim)
        _check_fast_flit_conservation(sim)
    assert not sim._network_busy(), "network failed to drain"

    delivered = [(d.packet_id, d.dest) for d in sim.stats.deliveries]
    assert len(delivered) == len(set(delivered)), "duplicate delivery"
    assert sorted(delivered) == sorted(owed), "delivery ledger mismatch"


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=family_configs)
def test_family_fast_matches_reference(params):
    fingerprints = []
    for engine in ("reference", "fast"):
        sim = _build_family(params, engine=engine)
        stats = sim.run(warmup=20, measure=100, drain_limit=20_000)
        fingerprints.append(
            (
                sim.cycle,
                stats.injected_packets,
                stats.injected_flits,
                stats.buffer_writes,
                stats.buffer_reads,
                stats.crossbar_traversals,
                stats.link_traversals,
                stats.ejections,
                sorted(
                    (d.src, d.dest, d.inject_cycle, d.deliver_cycle)
                    for d in stats.deliveries
                ),
                [link.traversals for link in sim.links],
            )
        )
    assert fingerprints[0] == fingerprints[1]


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=unicast_configs)
def test_fast_engine_matches_reference_for_random_configs(params):
    # Differential fuzz: the full end-state fingerprint must match the
    # oracle bitwise for any randomized unicast configuration.  Packet
    # ids come from a process-global counter, so deliveries compare by
    # structural identity.
    fingerprints = []
    for engine in ("reference", "fast"):
        sim = _build(
            {**params, "enable_taps": False, "multicast_fraction": 0.0},
            engine=engine,
        )
        stats = sim.run(warmup=20, measure=100, drain_limit=20_000)
        fingerprints.append(
            (
                sim.cycle,
                stats.injected_packets,
                stats.injected_flits,
                stats.buffer_writes,
                stats.buffer_reads,
                stats.bypassed_flits,
                stats.crossbar_traversals,
                stats.link_traversals,
                stats.ejections,
                sorted(
                    (d.src, d.dest, d.inject_cycle, d.deliver_cycle)
                    for d in stats.deliveries
                ),
                [link.traversals for link in sim.links],
            )
        )
    assert fingerprints[0] == fingerprints[1]


# --- trace replay under fault injection --------------------------------------------------


trace_replay_configs = st.fixed_dictionaries(
    {
        "k": st.integers(2, 4),
        "rate": st.floats(0.02, 0.12),
        "trace_cycles": st.integers(40, 120),
        "size_flits": st.integers(1, 3),
        "ber": st.floats(1e-4, 5e-3),
        "payload": st.booleans(),
        "seed": st.integers(0, 10_000),
    }
)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=trace_replay_configs)
def test_trace_replay_conservation_under_faults(params):
    # Record a random synthetic run into a trace, replay it with a
    # corrupting (never dropping) fault layer, and hold the conservation
    # invariants at every cycle.  Corruption may flip payload bits but
    # must neither create nor destroy flits, and every recorded packet
    # must still be delivered exactly once — possibly marked corrupted.
    from repro.fault import FaultLayer, ProtectionConfig, UniformBer
    from repro.noc import TraceTraffic, record_trace
    from repro.workload import build_traffic

    topo = MeshTopology(params["k"])
    source = build_traffic(
        topo,
        "synthetic",
        injection_rate=params["rate"],
        size_flits=params["size_flits"],
        seed=params["seed"],
        payload_mode="random" if params["payload"] else "constant",
    )
    trace = record_trace(source, params["trace_cycles"])

    traffic = TraceTraffic(
        topology=topo, entries=trace.entries, flit_bits=trace.flit_bits
    )
    sim = NocSimulator(topo, traffic=traffic, engine="reference")
    FaultLayer(
        UniformBer(ber=params["ber"]),
        ProtectionConfig(protocol="none"),
        seed=params["seed"] + 1,
    ).attach(sim)

    owed: list[tuple[int, tuple[int, int]]] = []
    for nic in sim.nics.values():
        original = nic.offer

        def offer(packet, _original=original):
            owed.extend((packet.packet_id, d) for d in packet.dests)
            _original(packet)

        nic.offer = offer

    horizon = params["trace_cycles"] + 10
    sim.stats.measure_start, sim.stats.measure_end = 0, horizon
    for _ in range(horizon):
        sim.step()
        _check_credit_conservation(sim)
        _check_flit_conservation(sim)

    traffic.begin_drain()
    for _ in range(20_000):
        if not sim._network_busy():
            break
        sim.step()
        _check_credit_conservation(sim)
        _check_flit_conservation(sim)
    assert not sim._network_busy(), "network failed to drain"
    traffic.end_drain()

    assert len(owed) == sum(1 for _e in trace.entries), "replay lost packets"
    delivered = [(d.packet_id, d.dest) for d in sim.stats.deliveries]
    assert len(delivered) == len(set(delivered)), "duplicate delivery"
    assert sorted(delivered) == sorted(owed), "delivery ledger mismatch"
