"""Property-based fuzzing of the NoC simulator.

Random mesh sizes, router configurations and traffic mixes; the protocol
invariants must hold for every combination:

* every offered packet is delivered to every destination exactly once;
* flits are conserved (buffer writes == reads after drain, up to taps);
* credits and VC ownership return to their reset state after drain;
* latency is bounded below by the XY pipeline minimum.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc import MeshTopology, NocConfig, NocSimulator, SyntheticTraffic
from repro.noc.routing import unicast_path_hops

configs = st.fixed_dictionaries(
    {
        "k": st.integers(2, 5),
        "n_vcs": st.sampled_from([2, 4]),
        "vc_capacity": st.integers(1, 4),
        "link_latency": st.integers(1, 2),
        "enable_taps": st.booleans(),
        "enable_bypass": st.booleans(),
        "routing": st.sampled_from(["xy", "o1turn"]),
        "rate": st.floats(0.01, 0.15),
        "pattern": st.sampled_from(["uniform", "transpose", "neighbor"]),
        "size_flits": st.integers(1, 3),
        "multicast_fraction": st.sampled_from([0.0, 0.3]),
        "seed": st.integers(0, 10_000),
    }
)


def _build(params):
    topo = MeshTopology(params["k"])
    degree = min(3, topo.n_nodes - 1)
    multicast_fraction = params["multicast_fraction"] if degree >= 2 else 0.0
    traffic = SyntheticTraffic(
        topo,
        params["rate"],
        params["pattern"],
        size_flits=params["size_flits"],
        multicast_fraction=multicast_fraction,
        multicast_degree=max(degree, 2),
        seed=params["seed"],
    )
    config = NocConfig(
        n_vcs=params["n_vcs"],
        vc_capacity=params["vc_capacity"],
        link_latency=params["link_latency"],
        enable_taps=params["enable_taps"],
        enable_bypass=params["enable_bypass"],
        routing=params["routing"],
    )
    return NocSimulator(params["k"], config=config, traffic=traffic)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=configs)
def test_invariants_hold_for_random_configs(params):
    sim = _build(params)
    stats = sim.run(warmup=30, measure=120, drain_limit=20_000)

    # Delivery completeness: every (packet, dest) owed by the offered
    # packets arrives exactly once.  Count owed pairs from the NICs.
    delivered = [(d.packet_id, d.dest) for d in stats.deliveries]
    assert len(delivered) == len(set(delivered)), "duplicate delivery"

    # Conservation: everything written is read at least once; multicast
    # forks read the same buffered flit once per branch, so reads can
    # exceed writes exactly when multicasts exist.
    assert stats.buffer_reads >= stats.buffer_writes
    if params["multicast_fraction"] == 0.0:
        assert stats.buffer_reads == stats.buffer_writes

    # Flow control returned to reset.
    for router in sim.routers.values():
        for out in router.outputs.values():
            assert out.credits == [sim.config.vc_capacity] * sim.config.n_vcs
            assert all(owner is None for owner in out.owner)
        for port in router.inputs.values():
            assert port.occupancy == 0

    # Latency floor: at least the XY hop pipeline for any delivery.
    for d in stats.deliveries[:50]:
        assert d.latency >= 1


@settings(max_examples=10, deadline=None)
@given(
    k=st.integers(2, 4),
    seed=st.integers(0, 1000),
    rate=st.floats(0.02, 0.1),
)
def test_same_seed_same_world(k, seed, rate):
    a = NocSimulator(k, injection_rate=rate, seed=seed).run(warmup=20, measure=100)
    b = NocSimulator(k, injection_rate=rate, seed=seed).run(warmup=20, measure=100)
    assert a.link_traversals == b.link_traversals
    # Packet ids come from a process-global counter, so compare the
    # structural identity of each delivery instead.
    key_a = [(d.dest, d.inject_cycle, d.deliver_cycle) for d in a.deliveries]
    key_b = [(d.dest, d.inject_cycle, d.deliver_cycle) for d in b.deliveries]
    assert key_a == key_b


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(2, 5),
    src=st.tuples(st.integers(0, 4), st.integers(0, 4)),
    dest=st.tuples(st.integers(0, 4), st.integers(0, 4)),
)
def test_single_packet_latency_scales_with_distance(k, src, dest):
    topo = MeshTopology(k)
    if not (topo.contains(src) and topo.contains(dest)) or src == dest:
        return
    from repro.noc import Packet

    sim = NocSimulator(k, injection_rate=0.0)
    sim.stats.measure_start, sim.stats.measure_end = 0, 500
    sim.nics[src].offer(
        Packet(src=src, dests=frozenset({dest}), size_flits=1, inject_cycle=0)
    )
    for _ in range(400):
        sim.step()
        if not sim._network_busy():
            break
    assert sim.stats.delivered_count == 1
    hops = unicast_path_hops(topo, src, dest)
    latency = sim.stats.deliveries[0].latency
    # Min: one pipeline traversal per hop; max: generous zero-load bound.
    assert hops <= latency <= 10 * (hops + 3)
