"""Alpha-power-law MOSFET model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tech import Mosfet, nmos, pmos, tech_45nm_soi
from repro.units import UM

TECH = tech_45nm_soi()


def test_off_device_conducts_nothing():
    dev = nmos(TECH, 1.0)
    assert dev.ids(vgs=0.0, vds=0.5) == 0.0
    assert dev.ids(vgs=0.5, vds=0.0) == 0.0


def test_subthreshold_current_is_exponential():
    dev = nmos(TECH, 1.0)
    n_vt = TECH.subthreshold_slope_n * 0.02585
    i1 = dev.ids_sat(dev.vth - 0.10)
    i2 = dev.ids_sat(dev.vth - 0.10 + n_vt)
    assert i2 / i1 == pytest.approx(math.e, rel=0.01)


def test_current_continuous_at_threshold():
    dev = nmos(TECH, 1.0)
    below = dev.ids_sat(dev.vth - 1e-6)
    above = dev.ids_sat(dev.vth + 1e-6)
    assert above / below == pytest.approx(1.0, rel=1e-3)


def test_saturation_current_realistic_scale():
    # ~0.1-0.3 mA/um at full overdrive for a 45 nm-class process.
    dev = nmos(TECH, 1.0)
    i_on = dev.ids_sat(TECH.vdd)
    assert 50e-6 < i_on < 500e-6


def test_pmos_weaker_than_nmos_at_equal_width():
    n = nmos(TECH, 2.0)
    p = pmos(TECH, 2.0)
    assert p.ids_sat(TECH.vdd) < n.ids_sat(TECH.vdd)


def test_triode_current_below_saturation():
    dev = nmos(TECH, 1.0)
    vgs = TECH.vdd
    shallow = dev.ids(vgs, 0.05)
    deep = dev.ids(vgs, TECH.vdd)
    assert 0.0 < shallow < deep
    assert deep == pytest.approx(dev.ids_sat(vgs))


@given(
    vgs=st.floats(0.05, 0.8),
    width_um=st.floats(0.1, 20.0),
)
def test_current_monotone_in_vgs_and_width(vgs, width_um):
    dev = nmos(TECH, width_um)
    bigger = nmos(TECH, width_um * 2)
    assert dev.ids_sat(vgs + 0.05) > dev.ids_sat(vgs)
    assert bigger.ids_sat(vgs) == pytest.approx(2 * dev.ids_sat(vgs), rel=1e-9)


@given(vds=st.floats(0.01, 0.8), vgs=st.floats(0.3, 0.8))
def test_triode_current_monotone_in_vds(vds, vgs):
    dev = nmos(TECH, 1.0)
    assert dev.ids(vgs, vds) <= dev.ids(vgs, min(vds * 1.5, 2.0)) + 1e-18


def test_r_on_decreases_with_width():
    small = nmos(TECH, 1.0)
    large = nmos(TECH, 4.0)
    assert large.r_on() < small.r_on()


def test_r_on_infinite_when_off():
    dev = nmos(TECH, 1.0)
    assert dev.r_on(vgs=0.0) == math.inf


def test_gate_cap_scales_with_width():
    assert nmos(TECH, 2.0).gate_cap == pytest.approx(2 * nmos(TECH, 1.0).gate_cap)


def test_scaled_copy():
    dev = nmos(TECH, 1.0)
    double = dev.scaled(2.0)
    assert double.width == pytest.approx(2 * UM)
    with pytest.raises(ConfigurationError):
        dev.scaled(0.0)


def test_vth_shift_constructor():
    lvt = nmos(TECH, 1.0, vth_shift=-0.08)
    assert lvt.vth == pytest.approx(TECH.vth_n - 0.08)
    assert lvt.ids_sat(0.3) > nmos(TECH, 1.0).ids_sat(0.3)


@pytest.mark.parametrize("bad_kwargs", [
    {"width": -1e-6, "vth": 0.3},
    {"width": 1e-6, "vth": -0.1},
])
def test_invalid_device_rejected(bad_kwargs):
    with pytest.raises(ConfigurationError):
        Mosfet(TECH, polarity="n", **bad_kwargs)


def test_invalid_polarity_rejected():
    with pytest.raises(ConfigurationError):
        Mosfet(TECH, 1e-6, 0.3, "x")
