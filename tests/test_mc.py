"""Monte Carlo engine, yield analysis, and BER machinery."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.mc import (
    ber_upper_bound,
    ber_vs_rate,
    default_stress_pattern,
    design_variants,
    immunity_ratio,
    measure_ber,
    q_factor_ber,
    run_monte_carlo,
    sweep_swing,
)
from repro.mc.engine import McResult, McRun


def _fake_result(n_fail: int, n_total: int, design=None) -> McResult:
    runs = [
        McRun(seed=i, ok=(i >= n_fail), n_errors=0, stuck=False, dvth_n=0, dvth_p=0)
        for i in range(n_total)
    ]
    return McResult(design=design, runs=runs)


# --- engine ----------------------------------------------------------------------------


def test_stress_pattern_contents():
    pattern = default_stress_pattern()
    assert set(pattern) <= {0, 1}
    assert "11110" in "".join(map(str, pattern))


def test_monte_carlo_reproducible(robust):
    a = run_monte_carlo(robust, n_runs=20, base_seed=100)
    b = run_monte_carlo(robust, n_runs=20, base_seed=100)
    assert [r.ok for r in a.runs] == [r.ok for r in b.runs]
    assert a.error_probability == b.error_probability


def test_monte_carlo_failures_reproducible_by_seed(robust):
    from repro.circuit import SRLRLink
    from repro.tech import monte_carlo_sample

    result = run_monte_carlo(robust, n_runs=60, base_seed=2013)
    pattern = default_stress_pattern()
    for seed in result.failure_seeds()[:2]:
        sample = monte_carlo_sample(robust.tech, seed)
        outcome = SRLRLink(robust, sample).transmit(pattern, 1.0 / 4.1e9)
        assert not outcome.ok


def test_global_only_mode_runs(robust):
    result = run_monte_carlo(robust, n_runs=10, local_enabled=False)
    assert result.n_runs == 10


def test_immunity_ratio_math():
    assert immunity_ratio(_fake_result(20, 100), _fake_result(5, 100)) == pytest.approx(4.0)
    assert immunity_ratio(_fake_result(0, 100), _fake_result(0, 100)) == 1.0
    assert immunity_ratio(_fake_result(0, 100), _fake_result(5, 100)) == 0.0
    # Zero contender failures: lower-bound via half a pseudo-count.
    assert immunity_ratio(_fake_result(10, 100), _fake_result(0, 100)) == pytest.approx(20.0)


def test_immunity_ratio_reports_lower_bound():
    # Contender never failed: the ratio is only a lower bound and must
    # say so, not silently substitute the pseudo-failure.
    bounded = immunity_ratio(_fake_result(10, 100), _fake_result(0, 100))
    assert bounded.is_lower_bound
    assert bounded.pseudo_failure_probability == pytest.approx(1.0 / 200)
    assert "lower bound" in bounded.describe()
    assert ">=" in bounded.describe()


def test_immunity_ratio_exact_cases_are_not_bounds():
    for reference, contender in [(20, 5), (0, 0), (0, 5)]:
        ratio = immunity_ratio(_fake_result(reference, 100), _fake_result(contender, 100))
        assert not ratio.is_lower_bound
        assert ratio.pseudo_failure_probability is None
        assert "=" in ratio.describe() and ">=" not in ratio.describe()


def test_immunity_ratio_behaves_as_float():
    import pickle

    ratio = immunity_ratio(_fake_result(10, 100), _fake_result(0, 100))
    assert isinstance(ratio, float)
    assert f"{ratio:.2f}" == "20.00"
    assert ratio * 2 == 40.0
    restored = pickle.loads(pickle.dumps(ratio))
    assert restored == ratio
    assert restored.is_lower_bound == ratio.is_lower_bound
    assert restored.pseudo_failure_probability == ratio.pseudo_failure_probability


def test_run_monte_carlo_validation(robust):
    with pytest.raises(ConfigurationError):
        run_monte_carlo(robust, n_runs=0)
    with pytest.raises(ConfigurationError):
        run_monte_carlo(robust, bit_period=0.0)


# --- yield analysis ---------------------------------------------------------------------


def test_design_variants_cover_all_techniques():
    variants = design_variants()
    assert set(variants) == {
        "robust",
        "straightforward",
        "no_alternating",
        "no_adaptive",
        "no_nmos_driver",
    }
    from repro.circuit import InverterDriver, NMOSDriver
    from repro.circuit.bias import AdaptiveSwingReference, FixedSwingReference

    assert isinstance(variants["robust"].driver, NMOSDriver)
    assert isinstance(variants["robust"].swing_reference, AdaptiveSwingReference)
    assert isinstance(variants["straightforward"].driver, InverterDriver)
    assert isinstance(variants["no_adaptive"].swing_reference, FixedSwingReference)
    assert len(variants["no_alternating"].delay_plan.cells) == 1


def test_sweep_swing_shape_and_monotonicity():
    sweep = sweep_swing([0.27, 0.33], n_runs=60)
    assert sweep.swings == [0.27, 0.33]
    assert set(sweep.variants()) == {"robust", "straightforward"}
    # Higher swing cannot be less reliable (paired seeds).
    assert sweep.series("robust")[1] <= sweep.series("robust")[0]


def test_sweep_swing_validation():
    with pytest.raises(ConfigurationError):
        sweep_swing([])
    with pytest.raises(ConfigurationError):
        sweep_swing([0.3], variants=["nope"], n_runs=1)


# --- BER --------------------------------------------------------------------------------


def test_ber_upper_bound_zero_errors_rule():
    # ~3/n at 95% for zero errors.
    assert ber_upper_bound(0, 1000) == pytest.approx(3.0 / 1000, rel=0.05)


def test_ber_upper_bound_monotone_in_errors():
    b0 = ber_upper_bound(0, 1000)
    b1 = ber_upper_bound(1, 1000)
    b5 = ber_upper_bound(5, 1000)
    assert b0 < b1 < b5


def test_ber_upper_bound_validation():
    with pytest.raises(ConfigurationError):
        ber_upper_bound(0, 0)
    with pytest.raises(ConfigurationError):
        ber_upper_bound(5, 3)
    with pytest.raises(ConfigurationError):
        ber_upper_bound(0, 10, confidence=1.5)
    assert ber_upper_bound(10, 10) == 1.0


def test_measure_ber_clean_link(robust_link):
    m = measure_ber(robust_link, 1.0 / 4.1e9, n_bits=4000, noise_sigma=0.003)
    assert m.errors == 0
    assert m.meets(1e-2)
    assert not m.meets(1e-9)  # not enough bits to *prove* 1e-9


def test_measure_ber_noisy_link(robust_link):
    m = measure_ber(robust_link, 1.0 / 4.1e9, n_bits=3000, noise_sigma=0.12)
    assert m.errors > 0
    assert m.observed_ber > 0


def test_ber_vs_rate_waterfall(robust_link):
    points = ber_vs_rate(robust_link, [3.5e9, 8e9], n_bits=2000, noise_sigma=0.003)
    low, high = points[0][1], points[1][1]
    assert low.errors == 0
    assert high.errors > 0


def test_q_factor_values():
    assert q_factor_ber(0.0, 0.01) == pytest.approx(0.5)
    # Q = 6 -> ~1e-9: the textbook operating point for BER 1e-9 claims.
    assert q_factor_ber(0.06, 0.01) == pytest.approx(1e-9, rel=0.5)
    with pytest.raises(ConfigurationError):
        q_factor_ber(0.05, 0.0)
