"""Worker integration: drain loops, failures, the shared cache, SIGKILL.

The capstone test here is the acceptance criterion of docs/SERVICE.md:
``scripts/smoke_service.py`` runs two real worker processes against one
database, SIGKILLs one *while it provably holds a lease*, and asserts
the survivor-merged campaign is bitwise identical to the uninterrupted
single-process baseline.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.analysis.sweep import sweep_grid
from repro.runtime import ResilienceConfig, ResultCache
from repro.service import CampaignDB, GRID_EVALUATORS, get_adapter, run_worker

REPO = Path(__file__).resolve().parent.parent

GRID = {"parameters": {"x": [0.0, 1.0, 2.0], "y": [1.0, 4.0]}, "evaluator": "poly"}

#: Fast-failing resilience for tests that exercise the failure path
#: (the stock config's 2 extra in-executor retries are pointless for a
#: deterministic KeyError).
FAIL_FAST = ResilienceConfig(max_retries=0, backoff_base=0.0)


def submit(db_path, name, kind, raw_config):
    adapter = get_adapter(kind)
    config = adapter.canonical_config(raw_config)
    tasks = [(t.key, t.index, t.spec) for t in adapter.expand(config)]
    with CampaignDB(db_path) as db:
        db.submit(name, kind, config, tasks)
    return adapter, config


def test_worker_drains_campaign_to_parity(tmp_path):
    db_path = tmp_path / "svc.sqlite"
    adapter, config = submit(db_path, "g", "sweep_grid", GRID)
    report = run_worker(db_path, worker_id="w0", drain=True, lease_seconds=30.0)
    assert (report.tasks_done, report.tasks_failed) == (6, 0)
    with CampaignDB(db_path) as db:
        assert db.status("g")[0].complete
        merged = adapter.merge(config, db.payloads("g"))
    reference = sweep_grid(GRID["parameters"], GRID_EVALUATORS["poly"])
    assert json.dumps(merged.metrics, sort_keys=True) == json.dumps(
        reference.metrics, sort_keys=True
    )


def test_workers_split_work_without_overlap(tmp_path):
    db_path = tmp_path / "svc.sqlite"
    submit(db_path, "g", "sweep_grid", GRID)
    first = run_worker(db_path, worker_id="w0", max_tasks=2,
                       drain=True, lease_seconds=30.0)
    second = run_worker(db_path, worker_id="w1", drain=True, lease_seconds=30.0)
    assert first.tasks_done == 2
    assert second.tasks_done == 4
    with CampaignDB(db_path) as db:
        assert db.status("g")[0].complete
        by_worker = {w.worker_id: w.tasks_done for w in db.workers()}
    assert by_worker == {"w0": 2, "w1": 4}


def test_worker_parks_deterministic_failures(tmp_path):
    # dimension-2 zdt1 over 1-D candidates: every attempt raises KeyError.
    db_path = tmp_path / "svc.sqlite"
    submit(db_path, "bad", "dse_batch", {
        "evaluator": "zdt1",
        "evaluator_kwargs": {"dimension": 2},
        "candidates": [{"x0": 0.5}],
    })
    report = run_worker(db_path, worker_id="w0", drain=True,
                        lease_seconds=30.0, max_attempts=2,
                        resilience=FAIL_FAST)
    assert report.tasks_done == 0
    assert report.tasks_failed == 2  # requeued once, then parked
    assert all("KeyError" in line for line in report.failures)
    with CampaignDB(db_path) as db:
        status = db.status("bad")[0]
        assert (status.n_failed, status.n_open) == (1, 0)
        [(key, error)] = db.task_errors("bad")
        assert "KeyError" in error
        # retry-failed hands the row a fresh budget.
        assert db.retry_failed("bad") == 1
        assert db.status("bad")[0].n_open == 1


def test_shared_cache_short_circuits_identical_tasks(tmp_path):
    """Task payload identity is content-addressed: a second campaign
    with the same config (fresh DB, fresh worker) is served entirely
    from a shared ResultCache — and the hit/miss counters land in the
    workers table for ``service.py status`` to surface."""
    cache_dir = tmp_path / "cache"
    first_db = tmp_path / "a.sqlite"
    submit(first_db, "g", "sweep_grid", GRID)
    run_worker(first_db, worker_id="w0", drain=True, lease_seconds=30.0,
               cache=ResultCache(cache_dir))
    assert ResultCache(cache_dir).stats().entries == 6

    second_db = tmp_path / "b.sqlite"
    adapter, config = submit(second_db, "g", "sweep_grid", GRID)
    cache = ResultCache(cache_dir)
    report = run_worker(second_db, worker_id="w1", drain=True,
                        lease_seconds=30.0, cache=cache)
    assert report.tasks_done == 6
    assert report.cache_hits == 6
    with CampaignDB(second_db) as db:
        assert db.status("g")[0].complete
        [worker] = db.workers()
        assert (worker.cache_hits, worker.cache_put_errors) == (6, 0)
        # Cached payloads merge identically to computed ones.
        merged = adapter.merge(config, db.payloads("g"))
    reference = sweep_grid(GRID["parameters"], GRID_EVALUATORS["poly"])
    assert json.dumps(merged.metrics, sort_keys=True) == json.dumps(
        reference.metrics, sort_keys=True
    )


def test_graceful_exit_releases_leases(tmp_path):
    """max_tasks stops a worker mid-queue; its shutdown releases any
    lease it still holds so peers need not wait out the expiry."""
    db_path = tmp_path / "svc.sqlite"
    submit(db_path, "g", "sweep_grid", GRID)
    run_worker(db_path, worker_id="w0", max_tasks=1, drain=True,
               lease_seconds=3600.0)
    with CampaignDB(db_path) as db:
        assert db.leased_keys("w0") == []
        assert db.status("g")[0].n_open == 5


@pytest.mark.integration
def test_sigkilled_worker_bitwise_parity():
    """The acceptance criterion, end to end with real processes: two
    workers, one SIGKILLed mid-lease, merged result bitwise-identical
    to the single-process baseline (scripts/smoke_service.py)."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "smoke_service.py"),
         "--lease-seconds", "2"],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "bitwise-identical to the single-process baseline" in proc.stdout
