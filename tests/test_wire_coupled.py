"""Coupled two-line model: crosstalk physics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wire import CoupledPair, CoupledSolver
from repro.tech import tech_45nm_soi
from repro.units import FF, MM, PS
from repro.wire.rc import WireGeometry, WireSegment

TECH = tech_45nm_soi()


@pytest.fixture(scope="module")
def pair(segment_1mm):
    return CoupledPair(segment_1mm, r_victim=350.0, r_aggressor=350.0, c_load=10 * FF)


def test_solver_rejects_bad_matrices():
    with pytest.raises(ConfigurationError):
        CoupledSolver(np.eye(2), np.array([[1.0, 0.5], [0.4, 1.0]]), np.eye(2))
    with pytest.raises(ConfigurationError):
        CoupledSolver(np.eye(3), np.eye(2), np.eye(2))


def test_uncoupled_limit_matches_single_line(segment_1mm):
    """With zero coupling capacitance, the victim sees zero noise."""
    lonely = WireSegment(
        TECH, WireGeometry.reference(TECH), 1 * MM, n_neighbors=0
    )
    # n_neighbors=0 zeroes c_coupling contribution? CoupledPair uses the
    # segment's per-neighbor coupling directly, so build a variant tech
    # through a huge spacing instead.
    wide = WireSegment(TECH, WireGeometry(0.3e-6, 300e-6), 1 * MM)
    pair = CoupledPair(wide, 350.0, 350.0, c_load=10 * FF)
    noise = pair.victim_noise(150 * PS, 0.4)
    assert noise < 0.002  # essentially decoupled


def test_victim_noise_positive_and_below_aggressor(pair):
    noise = pair.victim_noise(150 * PS, 0.4)
    assert 0.0 < noise < 0.4


def test_noise_scales_linearly_with_aggressor(pair):
    n1 = pair.victim_noise(150 * PS, 0.2)
    n2 = pair.victim_noise(150 * PS, 0.4)
    assert n2 == pytest.approx(2 * n1, rel=1e-6)


def test_tighter_spacing_more_noise(segment_1mm):
    tight = WireSegment(TECH, WireGeometry(0.3e-6, 0.15e-6), 1 * MM)
    pair_tight = CoupledPair(tight, 350.0, 350.0, c_load=10 * FF)
    pair_ref = CoupledPair(segment_1mm, 350.0, 350.0, c_load=10 * FF)
    assert pair_tight.victim_noise(150 * PS, 0.4) > pair_ref.victim_noise(
        150 * PS, 0.4
    )


def test_dynamic_miller_effect(pair):
    quiet = pair.victim_far_peak(150 * PS, 0.4, 0.0)
    opposing = pair.victim_far_peak(150 * PS, 0.4, -0.4)
    in_phase = pair.victim_far_peak(150 * PS, 0.4, 0.4)
    assert opposing < quiet < in_phase


def test_in_phase_switching_approaches_uncoupled(pair, segment_1mm):
    """Neighbors moving together see no coupling current between them."""
    from repro.wire import pulse_transfer

    in_phase = pair.victim_far_peak(150 * PS, 0.4, 0.4)
    # Reference: same line with coupling caps inactive (quiet = they
    # still load; in-phase = they do not).  In-phase must exceed quiet.
    quiet = pair.victim_far_peak(150 * PS, 0.4, 0.0)
    assert in_phase > quiet


def test_pair_validation(segment_1mm):
    with pytest.raises(ConfigurationError):
        CoupledPair(segment_1mm, r_victim=0.0, r_aggressor=100.0)
    pair = CoupledPair(segment_1mm, 350.0, 350.0)
    with pytest.raises(ConfigurationError):
        pair.victim_noise(0.0, 0.4)
