"""Repeaterless/equalized links and link diagnostics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.circuit import (
    RepeaterlessLink,
    SRLRLink,
    diagnose_link,
    margin_profile,
    robust_design,
    stage_margins,
)
from repro.circuit.srlr import StageFailure
from repro.tech import monte_carlo_sample, tech_45nm_soi, tech_90nm_bulk
from repro.units import MM

T90 = tech_90nm_bulk()


# --- repeaterless / equalized ------------------------------------------------------------


@pytest.fixture(scope="module")
def bare_10mm():
    return RepeaterlessLink(T90, length=10 * MM)


def test_unequalized_long_wire_is_slow(bare_10mm):
    # tau ~ RC of 10 mm: eyes close well below 1 Gb/s.
    rate = bare_10mm.max_data_rate()
    assert 0.05e9 < rate < 1.0e9


def test_eye_height_monotone_in_rate(bare_10mm):
    eyes = [bare_10mm.eye_height(r) for r in (0.1e9, 0.3e9, 1.0e9)]
    assert eyes[0] > eyes[1] > eyes[2]
    assert eyes[0] > 0 > eyes[2]  # open slow, closed fast


def test_equalization_buys_rate_and_costs_energy():
    bare = RepeaterlessLink(T90, length=10 * MM)
    ffe = RepeaterlessLink(T90, length=10 * MM, taps=(1.4, -0.4))
    assert ffe.max_data_rate() > bare.max_data_rate()
    assert ffe.energy_per_bit() > bare.energy_per_bit()


def test_short_wire_is_fast():
    short = RepeaterlessLink(T90, length=1 * MM, r_drive=300.0)
    assert short.max_data_rate() > 2.0e9


def test_eye_scales_with_drive_amplitude():
    a = RepeaterlessLink(T90, drive_amplitude=0.3)
    b = RepeaterlessLink(T90, drive_amplitude=0.6)
    assert b.eye_height(0.2e9) == pytest.approx(2 * a.eye_height(0.2e9), rel=1e-6)


def test_repeaterless_validation():
    with pytest.raises(ConfigurationError):
        RepeaterlessLink(T90, length=0.0)
    with pytest.raises(ConfigurationError):
        RepeaterlessLink(T90, taps=())
    with pytest.raises(ConfigurationError):
        RepeaterlessLink(T90, taps=(-1.0,))
    link = RepeaterlessLink(T90)
    with pytest.raises(ConfigurationError):
        link.eye_height(0.0)
    with pytest.raises(ConfigurationError):
        link.energy_per_bit(activity=0.0)


# --- diagnostics ---------------------------------------------------------------------------


def test_healthy_link_diagnoses_clean(robust_link):
    diagnosis = diagnose_link(robust_link)
    assert diagnosis.ok
    assert diagnosis.failing_stage is None
    assert all(s.tap_errors == 0 for s in diagnosis.stages)
    assert all(s.failure is StageFailure.NONE for s in diagnosis.stages)


def test_margins_positive_on_healthy_link(robust_link):
    margins = stage_margins(robust_link)
    assert len(margins) == 10
    assert all(m > 0 for m in margins)


def test_margin_profile_sorted(robust_link):
    profile = margin_profile(robust_link)
    values = [m for _, m in profile]
    assert values == sorted(values)


def test_fault_localization_on_failing_dies():
    tech = tech_45nm_soi()
    design = robust_design()
    localized = 0
    for seed in range(2013, 2150):
        sample = monte_carlo_sample(tech, seed)
        link = SRLRLink(design, sample)
        diagnosis = diagnose_link(link)
        if diagnosis.ok:
            continue
        assert diagnosis.failing_stage is not None
        failing = diagnosis.stages[diagnosis.failing_stage]
        assert failing.tap_errors > 0
        assert failing.failure is not StageFailure.NONE
        # Upstream taps carried the data cleanly.
        for s in diagnosis.stages[: diagnosis.failing_stage]:
            assert s.tap_errors == 0
        localized += 1
    assert localized >= 3  # the MC failure rate guarantees cases exist


def test_diagnose_validation(robust_link):
    with pytest.raises(ConfigurationError):
        diagnose_link(robust_link, bit_period=0.0)
