"""Golden-oracle differential tests: fast engine vs reference engine.

The reference simulator (:mod:`repro.noc.simulator`) is the oracle; the
struct-of-arrays batch engine (:mod:`repro.noc.fastsim`) must reproduce
its end-of-run state *bitwise* for identical seeds — every counter,
every delivery record, every per-link traversal count, and (under fault
injection) every protection-protocol ledger entry.

The matrix below sweeps traffic pattern x injection rate x mesh size x
VC configuration x fault model, well past the 24-combination floor the
roadmap sets for the differential suite.  A combo failing here means
the fast engine diverged from the oracle — never "the numbers moved a
little"; the comparison is exact equality.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, LivelockError
from repro.fault import (
    CompositeFault,
    DeadLinks,
    FaultLayer,
    ProtectionConfig,
    UniformBer,
)
from repro.noc import (
    ENGINES,
    FastNocSimulator,
    MeshTopology,
    NocConfig,
    NocSimulator,
    SyntheticTraffic,
    build_topology,
    record_trace,
)
from repro.workload import build_traffic

SEED = 7


def _build(engine, k, rate, pattern, size_flits=1, seed=SEED, **config_kwargs):
    # ``k`` is an int mesh radix or a prebuilt Topology of any family.
    topology = MeshTopology(k) if isinstance(k, int) else k
    traffic = SyntheticTraffic(
        topology, rate, pattern, size_flits=size_flits, seed=seed
    )
    config = NocConfig(**config_kwargs) if config_kwargs else None
    return NocSimulator(
        topology, config=config, traffic=traffic, seed=seed, engine=engine
    )


def _fingerprint(sim):
    """Every externally observable end-of-run quantity, exact."""
    s = sim.stats
    return {
        "cycle": sim.cycle,
        "injected_packets": s.injected_packets,
        "injected_flits": s.injected_flits,
        "buffer_writes": s.buffer_writes,
        "buffer_reads": s.buffer_reads,
        "bypassed_flits": s.bypassed_flits,
        "crossbar_traversals": s.crossbar_traversals,
        "link_traversals": s.link_traversals,
        "ejections": s.ejections,
        "tap_deliveries": s.tap_deliveries,
        "corrupted_deliveries": s.corrupted_deliveries,
        "deliveries": sorted(
            (d.src, d.dest, d.inject_cycle, d.deliver_cycle, d.via_tap, d.corrupted)
            for d in s.deliveries
        ),
        "per_link_traversals": [link.traversals for link in sim.links],
        "per_link_payload": [
            (link.payload_transitions, link.coupling_events, link.last_word)
            for link in sim.links
        ],
    }


def _fault_fingerprint(layer):
    """The full protection-protocol ledger, exact."""
    fs = layer.stats
    return {
        "raw_faults": fs.raw_faults,
        "flits_corrupted": fs.flits_corrupted,
        "flits_dropped": fs.flits_dropped,
        "retransmissions": fs.retransmissions,
        "crc_giveups": fs.crc_giveups,
        "links_disabled": fs.links_disabled,
        "undeliverable_flits": fs.undeliverable_flits,
        "undeliverable_packets": fs.undeliverable_packets,
        "acks": fs.acks,
        "ack_hops": fs.ack_hops,
        "packet_retries": fs.packet_retries,
        "completed_transfers": fs.completed_transfers,
        "failed_transfers": fs.failed_transfers,
        "duplicate_deliveries": fs.duplicate_deliveries,
        "transfers": sorted(
            (t.src, tuple(sorted(t.dests)), t.first_inject, t.completed, t.retries)
            for t in fs.transfer_records
        ),
        "per_link": fs.per_link_error_counts(),
    }


# --- fault-free matrix -----------------------------------------------------------------
#
# (id, k, rate, pattern, size_flits, config kwargs).  Rates stay below
# each pattern's saturation point so runs drain; the comparison is still
# exercised under heavy contention by the 0.30 entries.

TRAFFIC_CASES = [
    ("uniform-k4-low", 4, 0.05, "uniform", 1, {}),
    ("uniform-k4-mid", 4, 0.15, "uniform", 1, {}),
    ("uniform-k4-high", 4, 0.30, "uniform", 1, {}),
    ("transpose-k4-low", 4, 0.05, "transpose", 1, {}),
    ("transpose-k4-mid", 4, 0.15, "transpose", 1, {}),
    ("transpose-k4-high", 4, 0.30, "transpose", 1, {}),
    ("bit_complement-k4", 4, 0.10, "bit_complement", 1, {}),
    ("neighbor-k4", 4, 0.25, "neighbor", 1, {}),
    ("hotspot-k4", 4, 0.08, "hotspot", 1, {}),
    ("uniform-k2", 2, 0.30, "uniform", 1, {}),
    ("uniform-k3", 3, 0.15, "uniform", 1, {}),
    ("uniform-k6", 6, 0.10, "uniform", 1, {}),
    ("transpose-k6", 6, 0.20, "transpose", 1, {}),
    ("uniform-k8", 8, 0.05, "uniform", 1, {}),
    ("vcs2-k4", 4, 0.10, "uniform", 1, {"n_vcs": 2}),
    ("vcs8-k4", 4, 0.10, "uniform", 1, {"n_vcs": 8}),
    ("cap2-k4", 4, 0.10, "uniform", 1, {"vc_capacity": 2}),
    ("o1turn-k4", 4, 0.15, "uniform", 1, {"routing": "o1turn"}),
    ("bypass-k4", 4, 0.15, "uniform", 1, {"enable_bypass": True}),
    ("latency2-k4", 4, 0.10, "uniform", 1, {"link_latency": 2}),
    ("taps-k4", 4, 0.10, "uniform", 1, {"enable_taps": True}),
    ("worm2-k4", 4, 0.10, "uniform", 2, {}),
    ("worm3-k4", 4, 0.08, "transpose", 3, {}),
    ("worm2-bypass-k4", 4, 0.10, "uniform", 2, {"enable_bypass": True}),
    ("worm2-o1turn-k4", 4, 0.10, "uniform", 2, {"routing": "o1turn"}),
]


@pytest.mark.parametrize(
    "k,rate,pattern,size_flits,config_kwargs",
    [case[1:] for case in TRAFFIC_CASES],
    ids=[case[0] for case in TRAFFIC_CASES],
)
def test_traffic_parity(k, rate, pattern, size_flits, config_kwargs):
    measure = 120 if k >= 8 else 200
    results = []
    for engine in ENGINES:
        sim = _build(engine, k, rate, pattern, size_flits, **config_kwargs)
        sim.run(warmup=40, measure=measure, drain_limit=20_000)
        results.append(_fingerprint(sim))
    reference, fast = results
    assert fast == reference


# --- topology-family matrix ------------------------------------------------------------
#
# Every fast-engine-supported topology class runs the same differential
# check: the SoA engine must match the per-flit oracle bitwise on torus
# wrap routes and concentrated-mesh endpoint traffic, exactly as on the
# flat mesh.  (The chiplet NoC is reference-only; its fallback contract
# is covered in tests/test_noc_topology_family.py.)

TOPOLOGY_CASES = [
    ("torus-k4-uniform-low", ("torus", 4, {}), 0.05, "uniform", 1, {}),
    ("torus-k4-uniform-high", ("torus", 4, {}), 0.25, "uniform", 1, {}),
    ("torus-k4-transpose", ("torus", 4, {}), 0.10, "transpose", 1, {}),
    ("torus-k5-uniform", ("torus", 5, {}), 0.10, "uniform", 1, {}),
    ("torus-k4-worm2", ("torus", 4, {}), 0.08, "uniform", 2, {}),
    ("torus-k4-vcs2", ("torus", 4, {}), 0.10, "uniform", 1, {"n_vcs": 2}),
    ("torus-k4-latency2", ("torus", 4, {}), 0.10, "uniform", 1,
     {"link_latency": 2}),
    ("cmesh-k2c4-uniform", ("cmesh", 2, {"concentration": 4}),
     0.05, "uniform", 1, {}),
    ("cmesh-k2c4-transpose", ("cmesh", 2, {"concentration": 4}),
     0.05, "transpose", 1, {}),
    ("cmesh-k3c2-uniform", ("cmesh", 3, {"concentration": 2}),
     0.08, "uniform", 1, {}),
    ("cmesh-k2c4-worm2", ("cmesh", 2, {"concentration": 4}),
     0.05, "uniform", 2, {}),
]


@pytest.mark.parametrize(
    "spec,rate,pattern,size_flits,config_kwargs",
    [case[1:] for case in TOPOLOGY_CASES],
    ids=[case[0] for case in TOPOLOGY_CASES],
)
def test_topology_parity(spec, rate, pattern, size_flits, config_kwargs):
    kind, k, builder_kwargs = spec
    results = []
    for engine in ENGINES:
        topology = build_topology(kind, k, **builder_kwargs)
        sim = _build(
            engine, topology, rate, pattern, size_flits, **config_kwargs
        )
        sim.run(warmup=40, measure=200, drain_limit=20_000)
        results.append(_fingerprint(sim))
    reference, fast = results
    assert fast == reference


TOPOLOGY_FAULT_CASES = [
    ("torus-ber-crc", ("torus", 4, {}), UniformBer(ber=1e-3), "crc"),
    ("torus-ber-e2e", ("torus", 4, {}), UniformBer(ber=1e-3), "e2e"),
    (
        "torus-dead-reroute",
        ("torus", 4, {}),
        DeadLinks(n_random=2, fail_cycle=50, mode="garbage"),
        "reroute",
    ),
    (
        "cmesh-ber-crc",
        ("cmesh", 2, {"concentration": 4}),
        UniformBer(ber=1e-3),
        "crc",
    ),
]


@pytest.mark.parametrize(
    "spec,model,protocol",
    [case[1:] for case in TOPOLOGY_FAULT_CASES],
    ids=[case[0] for case in TOPOLOGY_FAULT_CASES],
)
def test_topology_fault_parity(spec, model, protocol):
    kind, k, builder_kwargs = spec
    results = []
    for engine in ENGINES:
        topology = build_topology(kind, k, **builder_kwargs)
        sim = _build(engine, topology, 0.06, "uniform", 2)
        layer = FaultLayer(
            model, ProtectionConfig(protocol=protocol), seed=13
        ).attach(sim)
        sim.run(warmup=30, measure=200, drain_limit=20_000)
        results.append((_fingerprint(sim), _fault_fingerprint(layer)))
    reference, fast = results
    assert fast[0] == reference[0]
    assert fast[1] == reference[1]


# --- fault-injection matrix ------------------------------------------------------------
#
# Fault models are frozen configs (stateless), so one instance serves
# both engines; the FaultLayer itself carries per-run state and is
# rebuilt fresh per engine with the same seed.

FAULT_CASES = [
    ("ber-none", UniformBer(ber=1e-3), "none", 2),
    ("ber-crc", UniformBer(ber=1e-3), "crc", 2),
    ("ber-e2e", UniformBer(ber=1e-3), "e2e", 2),
    ("ber-hot-crc", UniformBer(ber=5e-3), "crc", 1),
    (
        "dead-garbage-reroute",
        DeadLinks(n_random=2, fail_cycle=50, mode="garbage"),
        "reroute",
        2,
    ),
    ("dead-drop-e2e", DeadLinks(n_random=2, fail_cycle=50, mode="drop"), "e2e", 2),
    (
        "composite-crc",
        CompositeFault(
            models=(UniformBer(ber=5e-4), DeadLinks(n_random=1, fail_cycle=80))
        ),
        "crc",
        2,
    ),
]


@pytest.mark.parametrize(
    "model,protocol,size_flits",
    [case[1:] for case in FAULT_CASES],
    ids=[case[0] for case in FAULT_CASES],
)
def test_fault_parity(model, protocol, size_flits):
    results = []
    for engine in ENGINES:
        sim = _build(engine, 4, 0.08, "uniform", size_flits)
        layer = FaultLayer(
            model, ProtectionConfig(protocol=protocol), seed=13
        ).attach(sim)
        sim.run(warmup=30, measure=200, drain_limit=20_000)
        results.append((_fingerprint(sim), _fault_fingerprint(layer)))
    reference, fast = results
    assert fast[0] == reference[0]
    assert fast[1] == reference[1]


# --- workload matrix -------------------------------------------------------------------
#
# The repro.workload generators (bursty Markov on/off, payload-carrying
# wrappers) and trace replay run the same differential check.  Payload
# cases compare the per-link transition/coupling counters too (they are
# part of _fingerprint), so the data-dependent energy inputs — not just
# the delivery statistics — are proven bitwise identical.

WORKLOAD_CASES = [
    ("bursty-k4-low", "bursty", 4, 0.05, {}),
    ("bursty-k4-mid", "bursty", 4, 0.15, {}),
    ("bursty-k4-transpose", "bursty", 4, 0.10, {"pattern": "transpose"}),
    ("bursty-k4-long-bursts", "bursty", 4, 0.08,
     {"burst_on": 0.02, "burst_off": 0.05}),
    ("bursty-k4-worm2", "bursty", 4, 0.08, {"size_flits": 2}),
    ("bursty-k4-random-payload", "bursty", 4, 0.10,
     {"payload_mode": "random"}),
    ("uniform-k4-random-payload", "synthetic", 4, 0.15,
     {"payload_mode": "random"}),
    ("uniform-k4-worstcase-payload", "synthetic", 4, 0.15,
     {"payload_mode": "worst_case"}),
    ("transpose-k4-random-payload", "synthetic", 4, 0.10,
     {"pattern": "transpose", "payload_mode": "random", "size_flits": 2}),
]


@pytest.mark.parametrize(
    "workload,k,rate,kwargs",
    [case[1:] for case in WORKLOAD_CASES],
    ids=[case[0] for case in WORKLOAD_CASES],
)
def test_workload_parity(workload, k, rate, kwargs):
    results = []
    for engine in ENGINES:
        topology = MeshTopology(k)
        traffic = build_traffic(
            topology, workload, injection_rate=rate, seed=SEED, **kwargs
        )
        sim = NocSimulator(
            topology, traffic=traffic, seed=SEED, engine=engine
        )
        sim.run(warmup=40, measure=200, drain_limit=20_000)
        results.append(_fingerprint(sim))
    reference, fast = results
    assert fast == reference


def test_trace_replay_parity(tmp_path):
    # Record a payload-carrying bursty run into a trace file, then
    # replay the file on both engines: identical streams, identical
    # counters, identical payload transition counts.
    topology = MeshTopology(4)
    source = build_traffic(
        topology, "bursty", injection_rate=0.12, seed=SEED,
        payload_mode="random",
    )
    trace = record_trace(source, 150)
    path = tmp_path / "bursty.trace.json"
    trace.save(path)
    results = []
    for engine in ENGINES:
        traffic = build_traffic(MeshTopology(4), "trace", trace_path=path)
        sim = NocSimulator(
            MeshTopology(4), traffic=traffic, seed=SEED, engine=engine
        )
        sim.run(warmup=40, measure=100, drain_limit=20_000)
        results.append(_fingerprint(sim))
    reference, fast = results
    assert fast == reference
    assert reference["injected_packets"] > 0
    assert any(t for t, _e, _w in reference["per_link_payload"])


# --- livelock detection parity ---------------------------------------------------------


def _livelock_config():
    # Livelock knobs live in NocConfig (honored identically by both
    # engines); a drain budget far below what a saturated 4x4 mesh
    # needs guarantees the detector fires.
    return dict(
        k=4,
        rate=0.9,
        pattern="uniform",
        config_kwargs={"drain_limit": 3, "stall_window": 2},
    )


def test_livelock_parity():
    spec = _livelock_config()
    outcomes = []
    for engine in ENGINES:
        sim = _build(
            engine, spec["k"], spec["rate"], spec["pattern"],
            **spec["config_kwargs"],
        )
        with pytest.raises(LivelockError):
            sim.run(warmup=10, measure=60)
        outcomes.append(sim.cycle)
    reference_cycle, fast_cycle = outcomes
    assert fast_cycle == reference_cycle


def test_livelock_config_honored_without_run_override():
    # run() without explicit limits must read NocConfig's fields.
    sim = _build("fast", 4, 0.9, "uniform", drain_limit=3, stall_window=2)
    with pytest.raises(LivelockError):
        sim.run(warmup=10, measure=60)


# --- engine selection and guard rails --------------------------------------------------


def test_engine_dispatch_returns_fast_subclass():
    sim = _build("fast", 4, 0.05, "uniform")
    assert isinstance(sim, FastNocSimulator)
    assert isinstance(sim, NocSimulator)
    assert type(_build("reference", 4, 0.05, "uniform")) is NocSimulator


def test_unknown_engine_rejected():
    with pytest.raises(ConfigurationError):
        NocSimulator(4, engine="warp")


def test_fast_engine_rejects_multicast_traffic():
    traffic = SyntheticTraffic(
        MeshTopology(4),
        0.2,
        "uniform",
        multicast_fraction=0.5,
        multicast_degree=3,
        seed=SEED,
    )
    with pytest.raises(ConfigurationError, match="unicast"):
        NocSimulator(4, traffic=traffic, seed=SEED, engine="fast")
