"""Cross-cutting coverage: lane namespacing, taps under traces, misc APIs."""

from __future__ import annotations

import pytest

from repro.circuit import SRLRLink, robust_design
from repro.noc import (
    MeshTopology,
    NocConfig,
    NocSimulator,
    SyntheticTraffic,
    TraceTraffic,
    price_stats,
    record_trace,
)
from repro.tech import monte_carlo_sample, tech_45nm_soi


def test_name_prefix_isolates_lane_mismatch():
    sample = monte_carlo_sample(tech_45nm_soi(), seed=44)
    a = SRLRLink(robust_design(), sample, name_prefix="laneA.")
    b = SRLRLink(robust_design(), sample, name_prefix="laneB.")
    c = SRLRLink(robust_design(), sample, name_prefix="laneA.")
    # Same prefix + same sample = identical devices; different prefix
    # draws fresh mismatch on the same die.
    assert a.stages[0]._m1.vth == c.stages[0]._m1.vth
    assert a.stages[0]._m1.vth != b.stages[0]._m1.vth
    # The bias replica is shared (one generator per die), so the launch
    # amplitudes agree up to the drivers' own mismatch scale.
    assert abs(a._pm_launch.amplitude - b._pm_launch.amplitude) < 0.05


def test_trace_replay_isolates_tap_effect():
    """The advertised trace use case: identical traffic, taps on vs off."""
    topo = MeshTopology(4)
    gen = SyntheticTraffic(
        topo, injection_rate=0.04, multicast_fraction=0.6, multicast_degree=4, seed=12
    )
    trace = record_trace(gen, 200)

    def run(taps: bool):
        sim = NocSimulator(
            4,
            config=NocConfig(enable_taps=taps),
            traffic=TraceTraffic(topo, trace.entries),
        )
        return sim.run(warmup=0, measure=220)

    with_taps = run(True)
    without = run(False)
    # Same deliveries either way...
    assert with_taps.delivered_count == without.delivered_count
    # ...but taps convert ejections into free deliveries, saving energy.
    assert with_taps.tap_deliveries > 0
    assert without.tap_deliveries == 0
    assert with_taps.ejections < without.ejections
    assert price_stats(with_taps).total < price_stats(without).total


def test_transmit_probe_shape(robust_link, stress_pattern):
    out = robust_link.transmit(stress_pattern, 1.0 / 4.1e9, probe_stage=5)
    assert out.probe is not None
    assert len(out.probe) == len(stress_pattern)
    swings = [s for s, _, fired in out.probe if fired]
    assert swings and all(0.1 < s < 0.6 for s in swings)
    # No probe requested -> no probe payload.
    assert robust_link.transmit(stress_pattern[:8], 1.0 / 4.1e9).probe is None


def test_transmit_probe_validation(robust_link):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        robust_link.transmit([1, 0], 1.0 / 4.1e9, probe_stage=99)


def test_bypass_disabled_below_occupied_vcs():
    """Bypass only applies to flits landing in an *empty* VC.

    Single-flit packets always find their allocated VC empty (one packet
    per VC ownership), so multi-flit worms are needed: body flits arrive
    behind a still-buffered head and must take the full pipeline.
    """
    topo = MeshTopology(4)
    traffic = SyntheticTraffic(topo, injection_rate=0.3, size_flits=3, seed=3)
    sim = NocSimulator(
        4,
        config=NocConfig(enable_bypass=True, vc_capacity=4, n_vcs=2),
        traffic=traffic,
    )
    for _ in range(250):
        sim.step()
    assert 0 < sim.stats.bypassed_flits < sim.stats.buffer_writes


def test_pattern_lookup_in_experiment_registry():
    """Every experiment driver exported by the analysis package runs."""
    import repro.analysis as analysis

    names = [n for n in analysis.__all__ if n.startswith("e") and n[1].isdigit()]
    assert len(names) == 23  # E1..E22 plus the e11 simulated variant
    for name in names:
        assert callable(getattr(analysis, name))
