"""The 64-bit parallel SRLR bus (Fig. 3's datapath)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.circuit import SRLRBus, bus_yield, random_words, robust_design
from repro.tech import monte_carlo_sample, tech_45nm_soi
from repro.units import PS

T_BIT = 1.0 / 4.1e9


@pytest.fixture(scope="module")
def bus8(robust):
    return SRLRBus(robust, n_bits=8)


def test_bus_transmits_words_error_free(bus8):
    words = random_words(24, 8)
    out = bus8.transmit_words(words, T_BIT)
    assert out.ok
    assert out.words_received == words
    assert all(e == 0 for e in out.lane_errors)


def test_bus_energy_scales_with_width(robust):
    words = random_words(16, 4)
    narrow = SRLRBus(robust, n_bits=4).transmit_words(words, T_BIT)
    wide_words = random_words(16, 8)
    wide = SRLRBus(robust, n_bits=8).transmit_words(wide_words, T_BIT)
    assert wide.energy > narrow.energy


def test_bus_word_range_checked(bus8):
    with pytest.raises(ConfigurationError):
        bus8.transmit_words([1 << 8], T_BIT)
    with pytest.raises(ConfigurationError):
        bus8.transmit_words([-1], T_BIT)


def test_lanes_share_global_corner_but_not_mismatch(robust):
    sample = monte_carlo_sample(tech_45nm_soi(), seed=11)
    bus = SRLRBus(robust, n_bits=4, sample=sample)
    vths = [lane.stages[0]._m1.vth for lane in bus.lanes]
    assert len(set(vths)) == 4  # independent local draws per lane
    spread = max(vths) - min(vths)
    assert spread < 0.05  # but same die: only mismatch apart


def test_nominal_bus_has_no_skew(bus8):
    assert bus8.skew() == pytest.approx(0.0, abs=1e-15)


def test_mismatched_bus_has_finite_skew(robust):
    sample = monte_carlo_sample(tech_45nm_soi(), seed=5)
    bus = SRLRBus(robust, n_bits=8, sample=sample)
    skew = bus.skew()
    assert 0.0 < skew < 200 * PS  # well inside one UI


def test_bus_yield_correlated_lanes():
    report = bus_yield(n_bits=4, n_runs=40, n_words=24)
    assert 0.0 <= report.bus_failure_probability <= 1.0
    # Correlated lanes: measured bus failure is at most the independent
    # prediction (equality when exactly 0 or shared-corner dominated).
    assert (
        report.bus_failure_probability
        <= report.independence_prediction + 1e-9
    )
    # One bad lane kills the word, so the bus fails at least as often as
    # the per-lane rate.
    assert report.bus_failure_probability >= report.lane_failure_probability - 1e-9


def test_bus_validation(robust):
    with pytest.raises(ConfigurationError):
        SRLRBus(robust, n_bits=0)
    with pytest.raises(ConfigurationError):
        random_words(0)
    with pytest.raises(ConfigurationError):
        bus_yield(n_runs=0)
