"""Run-store crash semantics and search resume equivalence.

The central claim (ISSUE satellite): kill a search mid-generation —
i.e. drop an arbitrary suffix of the store, possibly leaving a torn
final line — resume it, and the final front is *identical* to the
uninterrupted run with the same seed.
"""

from __future__ import annotations

import json

import pytest

from repro.dse import (
    EvalRecord,
    LhsStrategy,
    Nsga2Strategy,
    ParamSpace,
    RunStore,
    StoreError,
    Zdt1Evaluator,
    continuous,
    run_dse,
)
from repro.dse.store import STORE_VERSION, run_config_key


def _space(d: int = 3) -> ParamSpace:
    return ParamSpace(tuple(continuous(f"x{i}", 0.0, 1.0) for i in range(d)))


def _front_key(result) -> list[tuple]:
    """The front as an exact, comparable value (params + objectives)."""
    return [
        (tuple(sorted(r.params.items())), tuple(sorted(r.objectives.items())))
        for r in result.front
    ]


def _store_lines(path) -> list[bytes]:
    return path.read_bytes().split(b"\n")[:-1]


# --- store mechanics -------------------------------------------------------------------


def test_store_roundtrip(tmp_path):
    path = tmp_path / "run.jsonl"
    record = EvalRecord(
        key="k1",
        generation=0,
        index=2,
        params={"x": 0.125, "y": 3.0},
        seed=42,
        feasible=True,
        objectives={"f1": 1.0 / 3.0, "f2": float("inf")},
        reason="",
        elapsed=0.5,
    )
    with RunStore(path) as store:
        store.begin({"case": "roundtrip"})
        store.append(record)
        store.append(record)  # idempotent per key
        assert len(store) == 1

    fresh = RunStore(path)
    fresh.load()
    assert fresh.records == [record]  # exact float round-trip, inf included
    assert fresh.header["config"] == {"case": "roundtrip"}
    assert fresh.header["config_key"] == run_config_key({"case": "roundtrip"})
    assert fresh.header["version"] == STORE_VERSION


def test_store_refuses_clobber_without_resume(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunStore(path) as store:
        store.begin({"a": 1})
    with pytest.raises(StoreError, match="resume=True"):
        RunStore(path).begin({"a": 1})


def test_store_refuses_config_mismatch_on_resume(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunStore(path) as store:
        store.begin({"a": 1})
    with pytest.raises(StoreError, match="different run configuration"):
        RunStore(path).begin({"a": 2}, resume=True)


def test_store_drops_unterminated_tail_even_if_parseable(tmp_path):
    """A line without its newline is not durable, valid JSON or not."""
    path = tmp_path / "run.jsonl"
    record = EvalRecord("k1", 0, 0, {"x": 1.0}, 7, True, {"f": 2.0})
    with RunStore(path) as store:
        store.begin({"a": 1})
        store.append(record)
    # Append a second, complete-looking record but no trailing newline.
    torn = dict(kind="eval", key="k2", generation=0, index=1, params={"x": 2.0},
                seed=8, feasible=True, objectives={"f": 3.0}, reason="", elapsed=0.0)
    with open(path, "ab") as fh:
        fh.write(json.dumps(torn).encode())

    fresh = RunStore(path)
    fresh.load()
    assert [r.key for r in fresh.records] == ["k1"]

    # Resuming truncates the torn bytes so the next append can't splice.
    fresh.begin({"a": 1}, resume=True)
    fresh.append(EvalRecord("k3", 1, 0, {"x": 3.0}, 9, True, {"f": 4.0}))
    fresh.close()
    reread = RunStore(path)
    reread.load()
    assert [r.key for r in reread.records] == ["k1", "k3"]


def test_store_mid_file_corruption_drops_tail_with_warning(tmp_path):
    path = tmp_path / "run.jsonl"
    records = [
        EvalRecord(f"k{i}", 0, i, {"x": float(i)}, i, True, {"f": float(i)})
        for i in range(4)
    ]
    with RunStore(path) as store:
        store.begin({"a": 1})
        for r in records:
            store.append(r)
    lines = _store_lines(path)
    lines[2] = b'{"kind": "eval", "key": "k1", garbage'
    path.write_bytes(b"\n".join(lines) + b"\n")

    fresh = RunStore(path)
    with pytest.warns(RuntimeWarning, match="corrupt record"):
        fresh.load()
    assert [r.key for r in fresh.records] == ["k0"]


def test_store_records_but_no_header_refused(tmp_path):
    path = tmp_path / "run.jsonl"
    line = dict(kind="eval", key="k1", generation=0, index=0, params={},
                seed=0, feasible=True, objectives={}, reason="", elapsed=0.0)
    path.write_bytes(json.dumps(line).encode() + b"\n")
    with pytest.raises(StoreError, match="no header"):
        RunStore(path).load()


# --- resume equivalence ----------------------------------------------------------------


def _run(store=None, resume=False, n_jobs=1, seed=99):
    return run_dse(
        _space(),
        Zdt1Evaluator(dimension=3),
        Nsga2Strategy(population=8, generations=4),
        base_seed=seed,
        n_jobs=n_jobs,
        store=store,
        resume=resume,
    )


def test_kill_mid_generation_then_resume_front_identical(tmp_path):
    """The ISSUE acceptance shape: truncate mid-generation, resume, compare."""
    baseline = _run()  # uninterrupted, no store

    full = tmp_path / "full.jsonl"
    with RunStore(full) as store:
        full_result = _run(store=store)
    assert _front_key(full_result) == _front_key(baseline)

    lines = _store_lines(full)
    n_records = len(lines) - 1  # header + one line per record
    assert n_records == len(full_result.records)

    # "Kill" partway through generation 2: header + 60% of records, plus
    # a torn half-line of the next record (the in-flight write).
    keep = 1 + int(n_records * 0.6)
    interrupted = tmp_path / "interrupted.jsonl"
    interrupted.write_bytes(b"\n".join(lines[:keep]) + b"\n" + lines[keep][: len(lines[keep]) // 2])

    with RunStore(interrupted) as store:
        resumed = _run(store=store, resume=True)

    assert _front_key(resumed) == _front_key(full_result)
    # The resumed run replayed what survived and computed only the rest.
    assert resumed.n_replayed == keep - 1
    assert resumed.n_evaluated == len(full_result.records) - (keep - 1)
    # And every record — not just the front — is bitwise identical.
    assert [
        (r.key, r.params, r.seed, r.feasible, r.objectives)
        for r in resumed.records
    ] == [
        (r.key, r.params, r.seed, r.feasible, r.objectives)
        for r in full_result.records
    ]


def test_resume_of_complete_run_recomputes_nothing(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunStore(path) as store:
        first = _run(store=store)
    with RunStore(path) as store:
        second = _run(store=store, resume=True)
    assert second.n_evaluated == 0
    assert second.n_replayed == len(first.records)
    assert _front_key(second) == _front_key(first)


def test_resume_across_worker_counts_identical(tmp_path):
    """Interrupt a serial run, resume with 4 workers: same front."""
    full = tmp_path / "full.jsonl"
    with RunStore(full) as store:
        full_result = _run(store=store, n_jobs=1)

    lines = _store_lines(full)
    interrupted = tmp_path / "interrupted.jsonl"
    interrupted.write_bytes(b"\n".join(lines[: 1 + len(full_result.records) // 3]) + b"\n")

    with RunStore(interrupted) as store:
        resumed = _run(store=store, resume=True, n_jobs=4)
    assert _front_key(resumed) == _front_key(full_result)


def test_resume_refuses_different_search_config(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunStore(path) as store:
        _run(store=store)
    with RunStore(path) as store:
        with pytest.raises(StoreError, match="different run configuration"):
            run_dse(
                _space(),
                Zdt1Evaluator(dimension=3),
                LhsStrategy(n_samples=8),  # different strategy => different run
                base_seed=99,
                store=store,
                resume=True,
            )


def test_engine_refuses_nonempty_store_without_resume(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunStore(path) as store:
        _run(store=store)
    with RunStore(path) as store:
        with pytest.raises(StoreError, match="resume=True"):
            _run(store=store)
