"""Error-structure statistics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mc import burst_lengths, collect_error_stats, compare_error_structure


def test_burst_grouping_basic():
    assert burst_lengths([]) == []
    assert burst_lengths([5]) == [1]
    assert burst_lengths([5, 6, 7, 20, 21, 40]) == [3, 2, 1]


def test_burst_gap_parameter():
    positions = [0, 2, 4, 10]
    assert burst_lengths(positions, gap=1) == [1, 1, 1, 1]
    assert burst_lengths(positions, gap=2) == [3, 1]
    with pytest.raises(ConfigurationError):
        burst_lengths(positions, gap=0)


@given(st.lists(st.integers(0, 10_000), min_size=0, max_size=100))
def test_burst_lengths_conserve_errors(positions):
    bursts = burst_lengths(list(set(positions)))
    assert sum(bursts) == len(set(positions))


def test_clean_link_has_no_errors(robust_link):
    stats = collect_error_stats(
        robust_link, 1.0 / 4.1e9, n_bits=4096, noise_sigma=0.002
    )
    assert stats.errors == 0
    assert stats.n_bursts == 0
    assert stats.isolated_fraction == 1.0
    assert not stats.bursty


def test_noise_regime_clusters_overspeed_does_not(robust_link):
    regimes = compare_error_structure(robust_link, n_bits=6144)
    noise, overspeed = regimes["noise"], regimes["overspeed"]
    assert noise.errors > 0 and overspeed.errors > 0
    # The residual-baseline coupling clusters noise errors...
    assert noise.mean_burst > 1.1
    # ...while overspeed drops are isolated (reset-period spaced).
    assert overspeed.max_burst <= 2
    assert overspeed.isolated_fraction > 0.9


def test_collect_validation(robust_link):
    with pytest.raises(ConfigurationError):
        collect_error_stats(robust_link, 1.0 / 4.1e9, n_bits=4, chunk=512)
