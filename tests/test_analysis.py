"""Report formatting, sweeps, and experiment drivers (fast settings)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.analysis import (
    SweepResult,
    e1_fig4_waveforms,
    e2_pulse_width_dynamics,
    e3_driver_modes,
    e5_headline,
    e6_fig8_energy_density,
    e7_table1,
    e8_bias_overhead,
    e9_router_power,
    e10_noc_breakdown,
    e11_multicast,
    e13_sizing,
    format_kv,
    format_table,
    sweep,
)


# --- report -----------------------------------------------------------------------------


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
    lines = out.split("\n")
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows equal width


def test_format_table_validation():
    with pytest.raises(ConfigurationError):
        format_table([], [])
    with pytest.raises(ConfigurationError):
        format_table(["a"], [[1, 2]])


def test_format_kv():
    out = format_kv("Title", [("key", 1.5), ("longer key", "x")])
    assert out.startswith("Title")
    assert "longer key" in out
    with pytest.raises(ConfigurationError):
        format_kv("T", [])


def test_format_cell_special_values():
    from repro.analysis import format_cell

    assert format_cell(float("nan")) == "-"
    assert format_cell(True) == "yes"
    assert format_cell(0.0) == "0"
    assert format_cell(1e-9) == "1e-09"


# --- sweep ------------------------------------------------------------------------------


def test_sweep_collects_metrics():
    result = sweep("x", [1.0, 2.0, 3.0], lambda x: {"sq": x * x, "lin": x})
    assert result.series("sq") == [(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]
    assert result.headers() == ["x", "lin", "sq"]
    assert len(result.rows()) == 3


def test_sweep_validation():
    with pytest.raises(ConfigurationError):
        sweep("x", [], lambda x: {})
    with pytest.raises(ConfigurationError):
        sweep("x", [1.0, 2.0], lambda x: {"a": x} if x < 2 else {"b": x})
    result = sweep("x", [1.0], lambda x: {"a": x})
    with pytest.raises(ConfigurationError):
        result.series("missing")


# --- experiments (fast smoke + shape checks) -----------------------------------------------


def test_e1_waveform_checkpoints():
    r = e1_fig4_waveforms()
    assert r.experiment_id == "E1"
    assert r.data["out_peak"] == pytest.approx(0.8, rel=1e-6)
    assert 0.15 < r.data["in_peak"] < 0.5
    assert "node X" in r.text


def test_e2_single_design_drifts_monotonically():
    r = e2_pulse_width_dynamics(corner_shifts=(0.0, 0.016))
    profile = r.data["profiles"][0.016]["single"]
    widths = [w for w in profile if w is not None]
    assert len(widths) >= 3
    # Eq. (1): monotone shrinking widths along the link.
    assert all(a >= b - 0.5 for a, b in zip(widths, widths[1:]))
    assert widths[0] - widths[-1] > 5.0  # a real drift, not noise


def test_e2_typical_corner_is_stable():
    r = e2_pulse_width_dynamics(corner_shifts=(0.0,))
    profile = r.data["profiles"][0.0]["single"]
    assert None not in profile
    assert max(profile) - min(profile) < 2.0


def test_e3_nmos_map_is_pmos_independent():
    r = e3_driver_modes(shifts=(-0.06, 0.0, 0.06))
    nmos_rows = r.data["maps"]["nmos (fixed Vref)"]
    assert len(set(nmos_rows)) == 1  # one failure mode: a dVth_n band
    inverter_rows = r.data["maps"]["inverter"]
    assert len(set(inverter_rows)) > 1  # PMOS-dependent second mode


def test_e5_headline_bands():
    r = e5_headline(n_ber_bits=2000)
    assert 4.1e9 <= r.data["max_rate"] <= 6e9
    assert r.data["energy_report"].fj_per_bit_per_mm == pytest.approx(40.4, rel=0.15)
    assert r.data["ber"].errors == 0
    assert r.data["ber_extrapolated"] < 1e-6


def test_e6_pareto_frontier():
    r = e6_fig8_energy_density()
    assert r.data["on_pareto_frontier"] is True
    assert r.data["highest_density"] is True
    assert r.data["beats_high_density_rivals"] is True


def test_e7_table_includes_reproduced_row():
    r = e7_table1()
    assert "This Work (reproduced)" in r.text
    assert 300 < r.data["measured_energy_fj_per_bit_per_cm"] < 500


def test_e8_bias_share():
    r = e8_bias_overhead()
    assert r.data["fraction_64"] == pytest.approx(0.006, abs=0.003)


def test_e9_router_split():
    r = e9_router_power()
    assert r.data["power_srlr"].datapath == pytest.approx(12.9e-3, rel=0.1)
    assert r.data["area"].datapath_fraction == pytest.approx(0.18, abs=0.03)


def test_e10_published_shares_present():
    r = e10_noc_breakdown()
    assert "RAW" in r.text and "TeraFLOPS" in r.text


def test_e11_multicast_saving_grows_with_degree():
    r = e11_multicast(k=6, degrees=(2, 8), n_samples=60)
    assert r.data["savings"][8] > r.data["savings"][2] > 1.0


def test_e13_sizing_sections():
    r = e13_sizing()
    assert "E13a" in r.text and "E13b" in r.text and "E13c" in r.text
    assert r.data["driver"].max_data_rate >= 4.1e9
