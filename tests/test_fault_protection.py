"""Protection protocols: end-to-end retry, adaptive reroute, and the
livelock detector that backstops them."""

from __future__ import annotations

import pytest

from repro.errors import LivelockError, ProtocolError
from repro.fault import FaultLayer, NoFaults, UniformBer
from repro.fault.models import DeadLinks
from repro.fault.protection import ProtectionConfig, TransferRecord
from repro.fault.reroute import AdaptiveRoutingTable
from repro.noc import MeshTopology, NocSimulator, Packet, Port
from repro.noc.routing import xy_route


class TestProtectionConfig:
    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ProtectionConfig(protocol="parity")
        with pytest.raises(ConfigurationError):
            ProtectionConfig(max_link_retries=0)
        with pytest.raises(ConfigurationError):
            ProtectionConfig(backoff_factor=0.5)

    def test_link_level(self):
        assert ProtectionConfig(protocol="crc").link_level
        assert ProtectionConfig(protocol="reroute").link_level
        assert not ProtectionConfig(protocol="e2e").link_level
        assert not ProtectionConfig(protocol="none").link_level


class TestEndToEnd:
    def test_recovers_over_garbage_dead_link(self):
        """A permanently-garbling wire: e2e retries until packets land
        clean (XY keeps sending some transfers across it, so retries
        must fire) and failed transfers stay bounded."""
        sim = NocSimulator(3, injection_rate=0.06, seed=4)
        layer = FaultLayer(
            DeadLinks(victims=("1,1->1,2",), fail_cycle=0), "e2e", seed=2
        ).attach(sim)
        stats = sim.run(warmup=40, measure=250, drain_limit=60_000)
        assert layer.stats.packet_retries > 0
        assert layer.stats.completed_transfers > 0
        # Completed transfers produced records with sane latencies.
        for record in layer.stats.transfer_records:
            assert isinstance(record, TransferRecord)
            assert record.completed >= record.first_inject
        # e2e delivers clean copies eventually; corrupted deliveries are
        # the detected-and-retried attempts, not the final outcome.
        assert layer.stats.completed_transfers >= stats.clean_delivered_count

    def test_short_timeout_produces_duplicates_that_are_deduped(self):
        """With a timeout far below the real round trip and zero errors,
        the source re-sends packets that were never lost; the tracker
        must dedup the extra deliveries, and every transfer still
        completes exactly once."""
        protection = ProtectionConfig(
            protocol="e2e", timeout_cycles=4, max_packet_retries=8
        )
        sim = NocSimulator(2, injection_rate=0.05, seed=6)
        layer = FaultLayer(UniformBer(0.0), protection, seed=1).attach(sim)
        sim.run(warmup=30, measure=150, drain_limit=60_000)
        assert layer.stats.duplicate_deliveries > 0
        assert layer.stats.packet_retries > 0
        assert layer.stats.failed_transfers == 0
        assert layer.stats.completed_transfers == len(
            layer.stats.transfer_records
        )

    def test_retry_exhaustion_fails_transfer(self):
        """Severed wire in drop mode: transfers that must cross it burn
        all retries and are declared failed rather than retried forever."""
        sim = NocSimulator(2, injection_rate=0.05, seed=3)
        protection = ProtectionConfig(
            protocol="e2e", max_packet_retries=2, timeout_cycles=40
        )
        layer = FaultLayer(
            DeadLinks(victims=("0,0->0,1",), fail_cycle=0, mode="drop"),
            protection,
            seed=1,
        ).attach(sim)
        sim.run(warmup=30, measure=150, drain_limit=60_000)
        assert layer.stats.failed_transfers > 0
        for record in layer.stats.transfer_records:
            assert record.retries <= protection.max_packet_retries


class TestAdaptiveRoutingTable:
    def test_intact_mesh_is_exactly_xy(self):
        topology = MeshTopology(4)
        table = AdaptiveRoutingTable(topology)
        for src in topology.nodes():
            for dest in topology.nodes():
                if src == dest:
                    continue
                assert table.next_hop(src, dest) == xy_route(src, dest)

    def test_disable_finds_detour(self):
        topology = MeshTopology(3)
        table = AdaptiveRoutingTable(topology)
        # XY from (0,0) to (2,0) goes EAST through (1,0).
        assert table.next_hop((0, 0), (2, 0)) == Port.EAST
        table.disable((1, 0), Port.EAST)
        assert ((1, 0), Port.EAST) in table.disabled_links
        # Still reachable, but (1,0) itself must now detour.
        assert table.reachable((0, 0), (2, 0))
        assert table.next_hop((1, 0), (2, 0)) != Port.EAST

    def test_isolated_node_unreachable(self):
        topology = MeshTopology(3)
        table = AdaptiveRoutingTable(topology)
        # Sever both links INTO the corner (0,0).
        table.disable((0, 1), Port.SOUTH if xy_route((0, 1), (0, 0)) == Port.SOUTH
                      else xy_route((0, 1), (0, 0)))
        table.disable((1, 0), xy_route((1, 0), (0, 0)))
        assert not table.reachable((2, 2), (0, 0))
        assert table.next_hop((2, 2), (0, 0)) is None
        # Traffic FROM the corner still routes out.
        assert table.reachable((0, 0), (2, 2))

    def test_disable_is_idempotent(self):
        table = AdaptiveRoutingTable(MeshTopology(3))
        port = xy_route((0, 0), (1, 0))
        table.disable((0, 0), port)
        table.disable((0, 0), port)
        assert len(table.disabled_links) == 1


class TestReroute:
    def test_dead_link_gets_disabled_and_routed_around(self):
        sim = NocSimulator(3, injection_rate=0.06, seed=4)
        layer = FaultLayer(
            DeadLinks(victims=("1,1->1,2",), fail_cycle=50), "reroute", seed=2
        ).attach(sim)
        stats = sim.run(warmup=40, measure=300, drain_limit=60_000)
        assert layer.stats.links_disabled == 1
        assert layer.table is not None
        assert ((1, 1), Port.NORTH) in layer.table.disabled_links or (
            (1, 1), Port.SOUTH
        ) in layer.table.disabled_links or (
            (1, 1), Port.EAST
        ) in layer.table.disabled_links or (
            (1, 1), Port.WEST
        ) in layer.table.disabled_links
        # After the disable, traffic keeps being delivered cleanly.
        assert stats.delivered_count > 0
        assert layer.stats.crc_giveups >= layer.protection.disable_threshold

    def test_partitioned_destination_is_counted_discard(self):
        """Sever both wires into corner (0,0): flits bound there become
        undeliverable (escape hatch), the network still drains."""
        sim = NocSimulator(3, injection_rate=0.06, seed=4)
        layer = FaultLayer(
            DeadLinks(
                victims=("0,1->0,0", "1,0->0,0"), fail_cycle=0, mode="drop"
            ),
            "reroute",
            seed=2,
        ).attach(sim)
        stats = sim.run(warmup=40, measure=300, drain_limit=60_000)
        assert layer.stats.links_disabled == 2
        assert layer.stats.undeliverable_packets > 0
        # Everyone else still gets served.
        assert stats.delivered_count > 0


class TestLivelockDetection:
    def test_retransmission_storm_raises_livelock_error(self):
        """CRC with an effectively unbounded retry budget over a wire
        that is guaranteed faulty: retries stretch without bound and the
        drain can never finish — the detector must convert that into a
        loud LivelockError naming the busiest link."""
        sim = NocSimulator(3, injection_rate=0.06, seed=4)
        protection = ProtectionConfig(protocol="crc", max_link_retries=100_000)
        FaultLayer(
            DeadLinks(victims=("1,1->1,2",), fail_cycle=0, mode="drop"),
            protection,
            seed=2,
        ).attach(sim)
        with pytest.raises(LivelockError) as excinfo:
            sim.run(warmup=40, measure=200, drain_limit=3_000)
        message = str(excinfo.value)
        assert "1,1->1,2" in message
        assert "cycle" in message

    def test_livelock_error_is_a_protocol_error(self):
        assert issubclass(LivelockError, ProtocolError)

    def test_stalled_nic_raises_no_forward_progress(self):
        """Wedge the network by hand: exhaust every VC on a NIC's output
        and queue a packet behind them. Nothing is in flight and nothing
        can move — the stall detector must fire rather than spin to the
        drain limit."""
        sim = NocSimulator(2, injection_rate=0.0, seed=1)
        nic = sim.nics[(0, 0)]
        for vc in range(sim.config.n_vcs):
            nic.out.acquire(vc, owner=(Port.LOCAL, 10_000 + vc))
        packet = Packet(
            src=(0, 0), dests=frozenset({(1, 1)}), size_flits=1, inject_cycle=0
        )
        nic.queue.append(packet)
        with pytest.raises(LivelockError) as excinfo:
            sim.run(warmup=10, measure=20, drain_limit=50_000, stall_window=200)
        assert "no forward progress" in str(excinfo.value)

    def test_clean_run_never_trips_detector(self):
        sim = NocSimulator(3, injection_rate=0.08, seed=5)
        FaultLayer(NoFaults(), "none").attach(sim)
        stats = sim.run(warmup=50, measure=300, stall_window=100)
        assert stats.delivered_count > 0
