"""The SRLR stage model."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.circuit import SRLRStage, StageFailure, robust_design
from repro.circuit.srlr import DEFAULT_NOMINAL_SWING
from repro.tech import GlobalCorner, corner_sample, tech_45nm_soi
from repro.units import PS

TECH = tech_45nm_soi()


@pytest.fixture(scope="module")
def stage(robust, nominal):
    return SRLRStage(robust, 0, nominal)


def test_standby_is_vdd_minus_keeper_vth(stage, robust):
    expected = TECH.vdd - (TECH.vth_n + robust.m2_vth_offset)
    assert stage.v_standby == pytest.approx(expected)


def test_standby_above_inverter_threshold(stage):
    # The paper's explicit constraint: X's standby voltage must stay above
    # the INV threshold or the stage fires continuously.
    assert stage.dv_trip > 0
    assert not stage.is_stuck


def test_keeper_current_weak_but_nonzero(stage):
    assert 1e-9 < stage.keeper_current < 5e-6


def test_net_current_has_sensitivity_floor(stage):
    # Below the floor the keeper wins; above it M1 wins, increasingly.
    assert stage.net_discharge_current(0.05) < 0
    assert stage.net_discharge_current(DEFAULT_NOMINAL_SWING) > 0


def test_trip_time_decreases_with_swing(stage):
    swings = [0.26, 0.28, 0.30, 0.34]
    trips = [stage.trip_time(s) for s in swings]
    assert all(a > b for a, b in zip(trips, trips[1:]))
    assert trips[-1] > 0


def test_trip_time_infinite_below_floor(stage):
    assert stage.trip_time(0.02) == float("inf")
    assert stage.trip_time(-0.1) == float("inf")


def test_rise_lag_grows_as_swing_shrinks(stage):
    assert stage.rise_lag(0.27) > stage.rise_lag(0.33)


def test_transfer_fires_at_operating_point(stage):
    out = stage.transfer(DEFAULT_NOMINAL_SWING, 180 * PS)
    assert out.fired
    assert out.failure is StageFailure.NONE
    assert 50 * PS < out.out_width < 250 * PS
    assert out.launch is not None
    assert out.stage_delay > 0


def test_transfer_too_weak_below_floor(stage):
    out = stage.transfer(0.05, 180 * PS)
    assert not out.fired
    assert out.failure is StageFailure.TOO_WEAK


def test_transfer_too_weak_with_short_dwell(stage):
    # Even a healthy swing fails if the pulse is gone before X trips.
    out = stage.transfer(0.27, 1 * PS)
    assert not out.fired
    assert out.failure is StageFailure.TOO_WEAK


def test_transfer_disabled_stage_never_fires(robust, nominal):
    gated = SRLRStage(robust, 0, nominal, enabled=False)
    out = gated.transfer(0.35, 200 * PS)
    assert not out.fired


def test_stuck_stage_detected(robust):
    # Push the keeper threshold way up: standby collapses below V_M.
    broken = dataclasses.replace(robust, m2_vth_offset=0.25)
    stage = SRLRStage(broken, 0, corner_sample(TECH, GlobalCorner("TT", 0, 0)))
    assert stage.is_stuck
    out = stage.transfer(0.3, 200 * PS)
    assert out.failure is StageFailure.STUCK


def test_collapsed_output_width_detected(robust, nominal):
    # A huge minimum width makes any regenerated pulse "collapsed".
    strict = dataclasses.replace(robust, min_output_width=1e-9)
    stage = SRLRStage(strict, 0, nominal)
    out = stage.transfer(DEFAULT_NOMINAL_SWING, 180 * PS)
    assert not out.fired
    assert out.failure is StageFailure.COLLAPSED


def test_sensitivity_swing_bisection(stage):
    floor = stage.sensitivity_swing(180 * PS)
    assert 0.1 < floor < DEFAULT_NOMINAL_SWING
    # Just below fails, just above trips within the dwell.
    assert stage.trip_time(floor - 0.005) > 180 * PS
    assert stage.trip_time(floor + 0.005) <= 180 * PS


def test_sensitivity_improves_with_longer_dwell(stage):
    assert stage.sensitivity_swing(400 * PS) < stage.sensitivity_swing(120 * PS)


def test_alternating_stages_have_different_wx(robust, nominal):
    s0 = SRLRStage(robust, 0, nominal)
    s1 = SRLRStage(robust, 1, nominal)
    s2 = SRLRStage(robust, 2, nominal)
    assert s0.wx > s1.wx  # long-first alternating plan
    assert s0.wx == pytest.approx(s2.wx, rel=1e-6)


def test_weak_nmos_corner_raises_floor(robust):
    tt = SRLRStage(robust, 0, corner_sample(TECH, GlobalCorner("TT", 0, 0)))
    ss = SRLRStage(robust, 0, corner_sample(TECH, GlobalCorner("W", 0.05, 0.0)))
    assert ss.sensitivity_swing(180 * PS) > tt.sensitivity_swing(180 * PS)


def test_invalid_stage_args(robust, nominal):
    with pytest.raises(ConfigurationError):
        SRLRStage(robust, -1, nominal)
    stage = SRLRStage(robust, 0, nominal)
    with pytest.raises(ConfigurationError):
        stage.sensitivity_swing(0.0)


def test_design_validation():
    with pytest.raises(ConfigurationError):
        robust_design(n_stages=0)
    base = robust_design()
    with pytest.raises(ConfigurationError):
        dataclasses.replace(base, c_node_x=-1.0)
