"""O1TURN adaptive routing: YX order, VC classes, deadlock freedom."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.noc import (
    MeshTopology,
    NocConfig,
    NocSimulator,
    Packet,
    Port,
    xy_route,
    yx_route,
)

K = 4
TOPO = MeshTopology(K)
nodes = st.tuples(st.integers(0, K - 1), st.integers(0, K - 1))


def test_yx_routes_y_first():
    assert yx_route((0, 0), (2, 2)) == Port.NORTH
    assert yx_route((0, 2), (2, 2)) == Port.EAST
    assert yx_route((1, 1), (1, 1)) == Port.LOCAL


@settings(max_examples=50)
@given(src=nodes, dest=nodes)
def test_yx_always_reaches_destination(src, dest):
    node, hops = src, 0
    while node != dest:
        node = TOPO.neighbor(node, yx_route(node, dest))
        assert node is not None
        hops += 1
        assert hops <= 2 * K
    assert hops == TOPO.hop_distance(src, dest)


@settings(max_examples=30)
@given(src=nodes, dest=nodes)
def test_xy_and_yx_agree_on_hop_count(src, dest):
    def walk(route):
        node, hops = src, 0
        while node != dest:
            node = TOPO.neighbor(node, route(node, dest))
            hops += 1
        return hops

    assert walk(xy_route) == walk(yx_route)


def test_packet_routing_validation():
    with pytest.raises(ConfigurationError):
        Packet(src=(0, 0), dests=frozenset({(1, 1)}), size_flits=1,
               inject_cycle=0, routing="zigzag")
    with pytest.raises(ConfigurationError):
        Packet(src=(0, 0), dests=frozenset({(1, 1), (2, 2)}), size_flits=1,
               inject_cycle=0, routing="yx")


def test_o1turn_config_needs_even_vcs():
    with pytest.raises(ConfigurationError):
        NocConfig(routing="o1turn", n_vcs=3)
    with pytest.raises(ConfigurationError):
        NocConfig(routing="tornado")
    NocConfig(routing="o1turn", n_vcs=4)  # fine


def test_vc_classes_partition():
    sim = NocSimulator(K, config=NocConfig(routing="o1turn", n_vcs=4))
    router = sim.routers[(1, 1)]
    xy_class = set(router.vc_class("xy"))
    yx_class = set(router.vc_class("yx"))
    assert xy_class == {0, 1} and yx_class == {2, 3}
    plain = NocSimulator(K).routers[(1, 1)]
    assert set(plain.vc_class("xy")) == {0, 1, 2, 3}


def test_o1turn_delivers_and_drains():
    sim = NocSimulator(K, config=NocConfig(routing="o1turn", n_vcs=4),
                       injection_rate=0.15, pattern="uniform", seed=3)
    stats = sim.run(warmup=100, measure=300)
    assert stats.delivered_count > 0
    assert stats.buffer_writes == stats.buffer_reads  # conservation holds


def test_o1turn_uses_both_orders():
    sim = NocSimulator(K, config=NocConfig(routing="o1turn", n_vcs=4),
                       injection_rate=0.2, seed=3)
    orders = set()
    for cycle in range(60):
        for packet in sim.traffic.packets_for_cycle(cycle):
            sim.nics[packet.src].offer(packet)
            orders.add(packet.routing)
        sim.step()
    assert orders == {"xy", "yx"}


def test_o1turn_beats_xy_on_transpose_at_load():
    def run(routing):
        sim = NocSimulator(6, config=NocConfig(routing=routing, n_vcs=8),
                           injection_rate=0.3, pattern="transpose", seed=9)
        return sim.run(warmup=150, measure=300, drain_limit=60000)

    xy = run("xy")
    o1 = run("o1turn")
    assert o1.average_latency < xy.average_latency


def test_o1turn_multicast_stays_xy():
    sim = NocSimulator(K, config=NocConfig(routing="o1turn", n_vcs=4, enable_taps=True))
    sim.traffic.injection_rate = 0.0
    p = Packet(src=(0, 0), dests=frozenset({(3, 0), (0, 3)}), size_flits=1,
               inject_cycle=0)
    sim.nics[(0, 0)].offer(p)
    assert p.routing == "xy"  # the coin flip must skip multicasts
    for _ in range(80):
        sim.step()
        if not sim._network_busy():
            break
    assert len(sim.stats.deliveries) == 2
