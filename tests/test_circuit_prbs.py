"""PRBS generation and error counting (the on-chip test circuit)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.circuit import ErrorCounter, PrbsGenerator, worst_case_patterns


def test_prbs7_period_is_maximal():
    gen = PrbsGenerator(7)
    seq = gen.bits(gen.period * 2)
    assert seq[: gen.period] == seq[gen.period :]
    # No shorter period divides it.
    first = seq[: gen.period]
    for p in (1, 7, 31, 63):
        assert first[:p] * (127 // p + 1) != first + first[: (127 // p + 1) * p - 127]


def test_prbs7_balance():
    gen = PrbsGenerator(7)
    seq = gen.bits(gen.period)
    # Maximal-length LFSR: 64 ones, 63 zeros per period.
    assert sum(seq) == 64


@pytest.mark.parametrize("order", [7, 9, 15, 23, 31])
def test_supported_orders_produce_bits(order):
    gen = PrbsGenerator(order)
    bits = gen.bits(64)
    assert len(bits) == 64
    assert set(bits) <= {0, 1}
    assert 0 < sum(bits) < 64  # not constant


def test_reset_reproduces_sequence():
    gen = PrbsGenerator(15, seed=1234)
    a = gen.bits(100)
    gen.reset()
    assert gen.bits(100) == a


def test_different_seeds_differ():
    a = PrbsGenerator(15, seed=1).bits(64)
    b = PrbsGenerator(15, seed=77).bits(64)
    assert a != b


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        PrbsGenerator(8)
    with pytest.raises(ConfigurationError):
        PrbsGenerator(7, seed=0)
    with pytest.raises(ConfigurationError):
        PrbsGenerator(7, seed=1 << 8)
    gen = PrbsGenerator(7)
    with pytest.raises(ConfigurationError):
        gen.bits(-1)
    with pytest.raises(ConfigurationError):
        gen.reset(seed=0)


def test_error_counter_counts_mismatches():
    counter = ErrorCounter()
    n = counter.compare([1, 0, 1, 1], [1, 1, 1, 0])
    assert n == 2
    assert counter.transmitted == 4
    assert counter.errors == 2
    assert counter.bit_error_rate == pytest.approx(0.5)


def test_error_counter_accumulates():
    counter = ErrorCounter()
    counter.compare([1, 1], [1, 1])
    counter.compare([0, 0], [0, 1])
    assert counter.transmitted == 4
    assert counter.errors == 1


def test_error_counter_empty_rate():
    assert ErrorCounter().bit_error_rate == 0.0


def test_error_counter_length_mismatch():
    with pytest.raises(ConfigurationError):
        ErrorCounter().compare([1], [1, 0])


def test_worst_case_patterns_contain_11110():
    pattern = worst_case_patterns(run_length=4, repeats=2)
    s = "".join(map(str, pattern))
    assert "11110" in s
    assert "010" in s  # isolated one


def test_worst_case_patterns_validation():
    with pytest.raises(ConfigurationError):
        worst_case_patterns(run_length=0)


@given(order=st.sampled_from([7, 9, 15]), n=st.integers(1, 200))
def test_prbs_deterministic_property(order, n):
    assert PrbsGenerator(order).bits(n) == PrbsGenerator(order).bits(n)
