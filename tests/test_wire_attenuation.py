"""Pulse attenuation: the low-swing generation mechanism."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tech import tech_45nm_soi
from repro.units import FF, MM, PS
from repro.wire import (
    AttenuationTable,
    PulseTransfer,
    attenuation_table,
    log_quantize,
    pulse_transfer,
    reference_segment,
)

TECH = tech_45nm_soi()


@pytest.fixture(scope="module")
def transfer(segment_1mm):
    return pulse_transfer(segment_1mm, r_drive=300.0, c_load=2 * FF)


@pytest.fixture(scope="module")
def table(segment_1mm):
    return attenuation_table(segment_1mm, r_drive=300.0, c_load=2 * FF, r_decay=400.0)


def test_attenuation_below_unity(transfer):
    # A short pulse arrives attenuated: this IS the low-swing mechanism.
    assert 0.0 < transfer.peak_ratio(100 * PS) < 1.0


def test_attenuation_monotone_in_width(transfer):
    ratios = [transfer.peak_ratio(w * PS) for w in (40, 80, 160, 320)]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))


def test_long_pulse_approaches_full_swing(transfer):
    assert transfer.peak_ratio(4000 * PS) > 0.95


def test_received_pulse_shape(transfer):
    rp = transfer.received(150 * PS, 0.5)
    assert 0.0 < rp.peak < 0.5
    assert rp.t_peak > 150 * PS  # peak forms after the drive ends
    assert rp.width > 0.0


def test_peak_scales_linearly_with_amplitude(transfer):
    r1 = transfer.received(120 * PS, 0.3)
    r2 = transfer.received(120 * PS, 0.6)
    assert r2.peak == pytest.approx(2 * r1.peak, rel=1e-6)
    assert r2.width == pytest.approx(r1.width, rel=1e-6)


def test_delay_50_reasonable(transfer, segment_1mm):
    d = transfer.delay_50()
    # Between the lumped-RC lower bound and several time constants.
    assert 0.2 * segment_1mm.rc_time_constant < d < 10 * segment_1mm.rc_time_constant


def test_weak_driver_attenuates_more(segment_1mm):
    strong = pulse_transfer(segment_1mm, r_drive=150.0)
    weak = pulse_transfer(segment_1mm, r_drive=1500.0)
    assert weak.peak_ratio(120 * PS) < strong.peak_ratio(120 * PS)


def test_invalid_width_rejected(transfer):
    with pytest.raises(ConfigurationError):
        transfer.far_end_waveform(0.0, 1.0)


# --- AttenuationTable ------------------------------------------------------------------


def test_table_interpolates_exact_solver(table, transfer):
    for w in (60 * PS, 130 * PS, 280 * PS):
        assert table.peak_ratio(w) == pytest.approx(
            transfer.peak_ratio(w), rel=0.03
        )


def test_table_charge_monotone_in_width(table):
    q = [table.charge_in(w * PS) for w in (40, 100, 200, 400)]
    assert all(a < b for a, b in zip(q, q[1:]))


def test_table_charge_bounded_by_total_capacitance(table, segment_1mm):
    # Per volt of drive, the charge cannot exceed the full wire + load cap.
    q_max = table.charge_in(table.w_max)
    assert q_max <= (segment_1mm.capacitance + 2 * FF) * 1.02


def test_table_zero_width_edge_cases(table):
    assert table.peak_ratio(0.0) == 0.0
    assert table.charge_in(-1e-12) == 0.0
    assert table.width_out(0.0) == 0.0


def test_decay_tau_uses_pulldown_resistance(segment_1mm):
    fast = attenuation_table(segment_1mm, 300.0, 2 * FF, r_decay=200.0)
    slow = attenuation_table(segment_1mm, 300.0, 2 * FF, r_decay=2000.0)
    assert slow.decay_tau > fast.decay_tau


def test_table_cached_by_quantized_resistance(segment_1mm):
    a = attenuation_table(segment_1mm, 300.0, 2 * FF, 400.0)
    b = attenuation_table(segment_1mm, 301.0, 2 * FF, 401.0)  # same grid cell
    assert a is b


def test_log_quantize_properties():
    assert log_quantize(100.0) == pytest.approx(100.0, rel=0.08)
    with pytest.raises(ConfigurationError):
        log_quantize(0.0)


@given(value=st.floats(1e-2, 1e6))
def test_log_quantize_bounded_error(value):
    q = log_quantize(value, per_decade=16)
    assert abs(np.log10(q) - np.log10(value)) <= 0.5 / 16 + 1e-12


@settings(max_examples=15, deadline=None)
@given(w1=st.floats(20e-12, 200e-12), w2=st.floats(20e-12, 200e-12))
def test_table_peak_monotonicity_property(table, w1, w2):
    lo, hi = sorted((w1, w2))
    assert table.peak_ratio(lo) <= table.peak_ratio(hi) + 1e-9
