"""The 10-stage SRLR link: propagation, transmission, energy."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.circuit import SRLRLink, robust_design
from repro.circuit.prbs import PrbsGenerator
from repro.tech import GlobalCorner, corner_sample, tech_45nm_soi
from repro.units import FJ, GBPS, PS

TECH = tech_45nm_soi()
T_BIT = 1.0 / 4.1e9


def test_pulse_propagates_through_all_stages(robust_link):
    records = robust_link.propagate_pulse()
    assert len(records) == 10
    assert all(r.fired for r in records)


def test_swing_stays_low_along_link(robust_link):
    records = robust_link.propagate_pulse()
    for r in records:
        assert 0.1 < r.in_swing < 0.5  # genuinely low-swing vs 0.8 V rail


def test_latency_scales_with_length(robust_link):
    lat10 = robust_link.latency()
    short = SRLRLink(robust_design(n_stages=5))
    assert lat10 > short.latency() > 0
    # ~200 ps/mm: between one and four wire time constants per segment.
    assert 1000 * PS < lat10 < 4000 * PS


def test_transmit_error_free_at_41g(robust_link, stress_pattern):
    result = robust_link.transmit(stress_pattern, T_BIT)
    assert result.ok
    assert result.received == stress_pattern
    assert not result.stuck


def test_transmit_all_taps_agree_when_clean(robust_link, stress_pattern):
    result = robust_link.transmit(stress_pattern, T_BIT)
    # Multicast-for-free: every intermediate tap carries the same bits.
    for tap in result.tap_bits:
        assert tap == stress_pattern


def test_transmit_fails_when_overclocked(robust_link, stress_pattern):
    result = robust_link.transmit(stress_pattern, 1.0 / 9e9)
    assert result.n_errors > 0
    # Both overspeed mechanisms are real: dropped 1s (reset dead time)
    # and spurious 1s (residual ISI at the shrunken unit interval).
    drops = sum(1 for s, g in zip(result.sent, result.received) if s == 1 and g == 0)
    assert drops > 0


def test_max_data_rate_bracket(robust_link, stress_pattern):
    rate = robust_link.max_data_rate(stress_pattern)
    assert 4.1 * GBPS <= rate <= 6.0 * GBPS
    assert robust_link.transmit(stress_pattern, 1.0 / rate).ok


def test_max_data_rate_zero_for_broken_link(stress_pattern):
    broken = dataclasses.replace(robust_design(), m2_vth_offset=0.25)
    link = SRLRLink(broken)
    assert link.max_data_rate(stress_pattern) == 0.0


def test_stuck_link_reads_all_ones(stress_pattern):
    broken = dataclasses.replace(robust_design(), m2_vth_offset=0.25)
    link = SRLRLink(broken)
    result = link.transmit(stress_pattern, T_BIT)
    assert result.stuck
    assert all(b == 1 for b in result.received)
    assert not result.ok


def test_energy_breakdown_structure(robust_link):
    e = robust_link.energy_per_pulse()
    assert set(e) == {"wire", "internal", "total"}
    assert e["total"] == pytest.approx(e["wire"] + e["internal"])
    assert e["wire"] > e["internal"] > 0  # wire-dominated, as the paper argues


def test_energy_headline_ballpark(robust_link):
    # 0.5 activity * total / 10 mm should land near 40.4 fJ/bit/mm.
    per_bit_mm = 0.5 * robust_link.energy_per_pulse()["total"] / FJ / 10
    assert 30 < per_bit_mm < 50


def test_transmit_energy_tracks_ones_density(robust_link):
    sparse = robust_link.transmit([1] + [0] * 31, T_BIT)
    dense = robust_link.transmit([1, 0] * 16, T_BIT)
    assert dense.energy > 2 * sparse.energy
    assert sparse.energy > 0


def test_transmit_zero_pattern_costs_nothing(robust_link):
    result = robust_link.transmit([0] * 16, T_BIT)
    assert result.ok
    assert result.energy == 0.0


def test_noise_causes_errors_near_the_floor(stress_pattern):
    # Crank noise far above margin: errors must appear.
    link = SRLRLink(robust_design())
    noisy = link.transmit(stress_pattern, T_BIT, noise_sigma=0.15,
                          rng=np.random.default_rng(1))
    assert noisy.n_errors > 0


def test_noise_reproducible_with_seeded_rng(robust_link, stress_pattern):
    r1 = robust_link.transmit(stress_pattern, T_BIT, noise_sigma=0.02,
                              rng=np.random.default_rng(5))
    r2 = robust_link.transmit(stress_pattern, T_BIT, noise_sigma=0.02,
                              rng=np.random.default_rng(5))
    assert r1.received == r2.received


def test_weak_global_corner_breaks_fixed_reference_link(stress_pattern):
    from repro.circuit.bias import fixed_for_amplitude
    from repro.circuit.srlr import _nmos_amplitude_for_swing
    from repro.circuit import NMOSDriver

    amp = _nmos_amplitude_for_swing(TECH, 0.30, NMOSDriver(), 1e-3)
    fixed = dataclasses.replace(
        robust_design(), swing_reference=fixed_for_amplitude(TECH, amp)
    )
    weak = corner_sample(TECH, GlobalCorner("W", 0.05, 0.05))
    result = SRLRLink(fixed, weak).transmit(stress_pattern, T_BIT)
    assert result.n_errors > 0  # uncompensated weak corner fails...
    robust_result = SRLRLink(robust_design(), weak).transmit(stress_pattern, T_BIT)
    assert robust_result.n_errors <= result.n_errors  # ...adaptive helps


def test_transmit_validation(robust_link):
    with pytest.raises(ConfigurationError):
        robust_link.transmit([0, 1], 0.0)
    with pytest.raises(ConfigurationError):
        robust_link.transmit([0, 2], T_BIT)
    with pytest.raises(ConfigurationError):
        robust_link.transmit([0, 1], T_BIT, noise_sigma=-1.0)
    with pytest.raises(ConfigurationError):
        robust_link.max_data_rate([1, 0], rate_lo=2e9, rate_hi=1e9)


@settings(max_examples=10, deadline=None)
@given(bits=st.lists(st.integers(0, 1), min_size=4, max_size=40))
def test_transmit_roundtrip_property(robust_link, bits):
    """Any pattern transmits error-free at the rated speed at TT."""
    result = robust_link.transmit(bits, T_BIT)
    assert result.received == bits


def test_prbs15_long_run_error_free(robust_link):
    bits = PrbsGenerator(15).bits(2000)
    assert robust_link.transmit(bits, T_BIT).ok
