"""Wire geometry and RC extraction."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tech import tech_45nm_soi
from repro.units import MM, UM
from repro.wire import WireGeometry, WireSegment, reference_segment

TECH = tech_45nm_soi()


def test_reference_segment_matches_technology(segment_1mm, tech):
    assert segment_1mm.geometry.width == tech.wire_ref_width
    assert segment_1mm.r_per_m == pytest.approx(tech.wire_r_per_m)
    assert segment_1mm.c_total_per_m == pytest.approx(tech.wire_c_total_per_m())


def test_resistance_scales_inversely_with_width():
    narrow = WireSegment(TECH, WireGeometry(0.15 * UM, 0.3 * UM), 1 * MM)
    wide = WireSegment(TECH, WireGeometry(0.6 * UM, 0.3 * UM), 1 * MM)
    assert narrow.resistance == pytest.approx(4 * wide.resistance)


def test_coupling_scales_inversely_with_space():
    tight = WireSegment(TECH, WireGeometry(0.3 * UM, 0.15 * UM), 1 * MM)
    loose = WireSegment(TECH, WireGeometry(0.3 * UM, 0.6 * UM), 1 * MM)
    assert tight.c_coupling_per_m == pytest.approx(4 * loose.c_coupling_per_m)
    assert tight.c_ground_per_m == pytest.approx(loose.c_ground_per_m)


def test_totals_scale_linearly_with_length(segment_1mm):
    double = segment_1mm.scaled_to_length(2 * MM)
    assert double.resistance == pytest.approx(2 * segment_1mm.resistance)
    assert double.capacitance == pytest.approx(2 * segment_1mm.capacitance)


def test_distributed_time_constant(segment_1mm):
    expected = 0.5 * segment_1mm.resistance * segment_1mm.capacitance
    assert segment_1mm.rc_time_constant == pytest.approx(expected)


def test_neighbor_count_changes_capacitance_only():
    lonely = WireSegment(TECH, WireGeometry.reference(TECH), 1 * MM, n_neighbors=0)
    crowded = WireSegment(TECH, WireGeometry.reference(TECH), 1 * MM, n_neighbors=2)
    assert lonely.resistance == crowded.resistance
    assert lonely.capacitance < crowded.capacitance


def test_from_pitch_splits_width_and_space():
    g = WireGeometry.from_pitch(0.6 * UM, width_fraction=0.5)
    assert g.width == pytest.approx(0.3 * UM)
    assert g.space == pytest.approx(0.3 * UM)
    assert g.pitch == pytest.approx(0.6 * UM)


@given(pitch=st.floats(1e-7, 1e-5), frac=st.floats(0.1, 0.9))
def test_from_pitch_preserves_pitch(pitch, frac):
    g = WireGeometry.from_pitch(pitch, frac)
    assert g.pitch == pytest.approx(pitch, rel=1e-9)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"width": 0.0, "space": 0.3 * UM},
        {"width": 0.3 * UM, "space": -1.0},
    ],
)
def test_invalid_geometry_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        WireGeometry(**kwargs)


def test_invalid_segment_rejected():
    with pytest.raises(ConfigurationError):
        WireSegment(TECH, WireGeometry.reference(TECH), 0.0)
    with pytest.raises(ConfigurationError):
        WireSegment(TECH, WireGeometry.reference(TECH), 1 * MM, n_neighbors=5)
