"""ParamSpace: unit-cube mapping, constraints, grids, LHS, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import (
    ParamSpace,
    Parameter,
    continuous,
    discrete,
    log,
    space_from_spec,
)
from repro.dse.space import lhs_unit, param_from_spec
from repro.errors import ConfigurationError


# --- parameters ------------------------------------------------------------------------


def test_continuous_mapping_endpoints_and_midpoint():
    p = continuous("x", 2.0, 10.0)
    assert p.from_unit(0.0) == 2.0
    assert p.from_unit(1.0) == 10.0
    assert p.from_unit(0.5) == 6.0
    assert p.to_unit(6.0) == pytest.approx(0.5)


def test_log_mapping_is_decade_uniform():
    p = log("w", 0.1, 10.0)
    assert p.from_unit(0.0) == pytest.approx(0.1)
    assert p.from_unit(0.5) == pytest.approx(1.0)
    assert p.from_unit(1.0) == pytest.approx(10.0)
    assert p.to_unit(1.0) == pytest.approx(0.5)


def test_discrete_mapping_bins():
    p = discrete("m", [0.15, 0.2, 0.3])
    assert p.from_unit(0.0) == 0.15
    assert p.from_unit(0.99) == 0.3
    assert p.from_unit(1.0) == 0.3  # top edge stays in range
    assert p.from_unit(0.4) == 0.2
    assert p.to_unit(0.2) == pytest.approx(0.5)
    with pytest.raises(ConfigurationError):
        p.to_unit(0.25)


def test_from_unit_clips_out_of_cube():
    p = continuous("x", 0.0, 1.0)
    assert p.from_unit(-0.5) == 0.0
    assert p.from_unit(1.5) == 1.0


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        continuous("x", 1.0, 1.0)  # empty interval
    with pytest.raises(ConfigurationError):
        log("x", 0.0, 1.0)  # log needs positive lower
    with pytest.raises(ConfigurationError):
        discrete("x", [])  # no choices
    with pytest.raises(ConfigurationError):
        continuous("not a name", 0.0, 1.0)  # must be an identifier
    with pytest.raises(ConfigurationError):
        Parameter(name="x", kind="mystery", lower=0.0, upper=1.0)


def test_parameter_grid():
    assert continuous("x", 0.0, 4.0).grid(5) == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert discrete("m", [1.0, 2.0]).grid(7) == [1.0, 2.0]  # levels ignored
    with pytest.raises(ConfigurationError):
        continuous("x", 0.0, 1.0).grid(1)


# --- space -----------------------------------------------------------------------------


def _space() -> ParamSpace:
    return ParamSpace(
        parameters=(
            continuous("swing", 0.2, 0.4),
            log("width", 1.0, 10.0),
            discrete("m2", [0.15, 0.3]),
        ),
        constraints=("width >= 5 * m2",),
    )


def test_decode_encode_roundtrip():
    space = _space()
    params = space.decode([0.5, 0.5, 0.9])
    assert set(params) == {"swing", "width", "m2"}
    unit = space.encode(params)
    assert space.decode(unit) == pytest.approx(params)


def test_space_validation():
    with pytest.raises(ConfigurationError):
        ParamSpace(parameters=())
    with pytest.raises(ConfigurationError):
        ParamSpace(parameters=(continuous("x", 0, 1), continuous("x", 0, 2)))
    with pytest.raises(ConfigurationError):
        ParamSpace(parameters=(continuous("x", 0, 1),), constraints=("x >=",))
    space = _space()
    with pytest.raises(ConfigurationError):
        space.validate({"swing": 0.3})  # missing keys
    with pytest.raises(ConfigurationError):
        space.decode([0.5])  # wrong dimension


def test_constraints_gate_feasibility():
    space = _space()
    assert space.feasible({"swing": 0.3, "width": 5.0, "m2": 0.3})
    assert not space.feasible({"swing": 0.3, "width": 1.0, "m2": 0.3})


def test_constraint_helpers_available():
    space = ParamSpace(
        parameters=(continuous("x", -1.0, 1.0),),
        constraints=("abs(x) <= 0.5", "math.cos(x) > 0"),
    )
    assert space.feasible({"x": -0.25})
    assert not space.feasible({"x": 0.75})


def test_constraint_bad_name_raises_not_false():
    space = ParamSpace(
        parameters=(continuous("x", 0.0, 1.0),), constraints=("y > 0",)
    )
    with pytest.raises(ConfigurationError, match="failed to evaluate"):
        space.feasible({"x": 0.5})


def test_space_grid_drops_infeasible_cells():
    space = _space()
    points = space.grid(3)
    assert points, "grid must not be empty"
    # 3 * 3 * 2 cells minus the constraint-violating ones.
    assert len(points) < 18
    assert all(space.feasible(p) for p in points)
    # Per-axis levels mapping.
    fine = space.grid({"swing": 5, "width": 2, "m2": 99})
    swings = {p["swing"] for p in fine}
    assert len(swings) == 5


def test_lhs_unit_is_stratified_and_deterministic():
    rng = np.random.default_rng(0)
    u = lhs_unit(rng, 10, 3)
    assert u.shape == (10, 3)
    for j in range(3):
        bins = np.floor(u[:, j] * 10).astype(int)
        assert sorted(bins) == list(range(10))  # exactly one point per bin
    u2 = lhs_unit(np.random.default_rng(0), 10, 3)
    assert np.array_equal(u, u2)


def test_sample_lhs_keeps_violators():
    space = _space()
    rng = np.random.default_rng(1)
    samples = space.sample_lhs(16, rng)
    assert len(samples) == 16  # violators included, engine records them


def test_spec_roundtrip():
    space = _space()
    rebuilt = space_from_spec(space.spec())
    assert rebuilt == space
    p = discrete("m", [1.0, 2.0])
    assert param_from_spec(p.spec()) == p
