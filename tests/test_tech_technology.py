"""Technology parameter bundles."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.tech import Technology, tech_45nm_soi, tech_90nm_bulk
from repro.units import MM, UM


def test_paper_process_operates_at_0v8(tech):
    assert tech.name == "45nm SOI CMOS"
    assert tech.vdd == pytest.approx(0.8)


def test_reference_pitch_matches_bandwidth_density(tech):
    # 0.6 um pitch + 4.1 Gb/s -> the paper's 6.83 Gb/s/um.
    assert tech.wire_ref_pitch == pytest.approx(0.6 * UM)


def test_wire_capacitance_neighbor_accounting(tech):
    c0 = tech.wire_c_total_per_m(0)
    c1 = tech.wire_c_total_per_m(1)
    c2 = tech.wire_c_total_per_m(2)
    assert c0 == pytest.approx(tech.wire_c_ground_per_m)
    assert c1 - c0 == pytest.approx(tech.wire_c_coupling_per_m)
    assert c2 - c1 == pytest.approx(tech.wire_c_coupling_per_m)


def test_invalid_neighbor_count_rejected(tech):
    with pytest.raises(ConfigurationError):
        tech.wire_c_total_per_m(3)


def test_with_vdd_returns_scaled_copy(tech):
    scaled = tech.with_vdd(1.0)
    assert scaled.vdd == pytest.approx(1.0)
    assert scaled.vth_n == tech.vth_n
    assert tech.vdd == pytest.approx(0.8)  # original untouched


def test_90nm_wires_do_not_shrink_capacitance(tech, tech90):
    # Table I footnote: scaling does not reduce wire cap per length much.
    c45 = tech.wire_c_total_per_m()
    c90 = tech90.wire_c_total_per_m()
    assert 0.5 < c45 / c90 < 2.0


def test_vth_must_be_below_vdd():
    base = tech_45nm_soi()
    with pytest.raises(ConfigurationError):
        dataclasses.replace(base, vth_n=0.9)


@pytest.mark.parametrize("field", ["vdd", "k_drive", "wire_r_per_m", "avt_mismatch"])
def test_positive_parameters_enforced(field):
    base = tech_45nm_soi()
    with pytest.raises(ConfigurationError):
        dataclasses.replace(base, **{field: -1.0})


def test_technology_is_hashable_for_caching(tech):
    # The attenuation-table cache keys on the Technology object.
    assert hash(tech) == hash(tech_45nm_soi())
    assert tech == tech_45nm_soi()
