"""Sizing methodology and Fig. 4 waveform reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.circuit import (
    SRLRLink,
    robust_design,
    sensitivity_vs_m1_m2_ratio,
    stage_waveforms,
    sweep_segment_length,
    sweep_swing_energy,
    waveform_table,
)
from repro.units import MM, PS, UM


# --- sizing -----------------------------------------------------------------------------


def test_bigger_m1_senses_smaller_swings():
    points = sensitivity_vs_m1_m2_ratio([2 * UM, 4 * UM, 8 * UM])
    floors = [p.min_swing for p in points]
    assert floors[0] > floors[1] > floors[2]
    ratios = [p.current_ratio for p in points]
    assert ratios[0] < ratios[1] < ratios[2]


def test_segment_length_sweet_spot():
    points = sweep_segment_length([0.5 * MM, 1.0 * MM, 2.5 * MM])
    by_length = {round(p.segment_length / MM, 1): p for p in points}
    assert by_length[1.0].ok  # the paper's operating point works
    # Longer insertion attenuates below the target; the design factory
    # either fails outright or the link breaks.
    assert not by_length[2.5].ok
    # Short segments work but waste repeater energy per mm.
    if by_length[0.5].ok:
        assert (
            by_length[0.5].energy_per_bit_per_mm
            > by_length[1.0].energy_per_bit_per_mm
        )


def test_swing_energy_tradeoff_monotone():
    points = sweep_swing_energy([0.27, 0.30, 0.33])
    energies = [p.energy_per_bit_per_mm for p in points]
    margins = [p.margin for p in points]
    assert energies == sorted(energies)  # more swing, more energy
    assert margins == sorted(margins)  # more swing, more margin


def test_sizing_validation():
    with pytest.raises(ConfigurationError):
        sensitivity_vs_m1_m2_ratio([-1.0])
    with pytest.raises(ConfigurationError):
        sweep_segment_length([0.0])


# --- waveforms --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def waveform(robust_link):
    return stage_waveforms(robust_link, stage_index=3)


def test_waveform_shapes_consistent(waveform):
    n = len(waveform.times)
    assert waveform.v_in.shape == waveform.v_x.shape == waveform.v_out.shape == (n,)


def test_input_is_low_swing(waveform):
    assert 0.15 < waveform.v_in.max() < 0.5


def test_output_is_full_swing(waveform, tech):
    assert waveform.v_out.max() == pytest.approx(tech.vdd, rel=1e-6)
    assert waveform.v_out[0] == 0.0
    assert waveform.v_out[-1] == pytest.approx(0.0, abs=1e-9)


def test_node_x_dips_below_threshold_and_recovers(waveform, robust_link):
    stage = robust_link.stages[3]
    assert waveform.v_x[0] == pytest.approx(stage.v_standby)
    assert waveform.v_x.min() < stage.v_threshold
    assert waveform.v_x[-1] == pytest.approx(stage.v_standby)


def test_out_rises_after_x_crosses(waveform, robust_link):
    stage = robust_link.stages[3]
    i_out = int(np.argmax(waveform.v_out > 0.4))
    i_x = int(np.argmax(waveform.v_x < stage.v_threshold))
    assert i_out >= i_x


def test_waveform_table_rows(waveform):
    rows = waveform_table(waveform, 16)
    assert len(rows) == 16
    assert rows[0][0] == pytest.approx(0.0)
    with pytest.raises(ConfigurationError):
        waveform_table(waveform, 1)


def test_waveform_stage_bounds(robust_link):
    with pytest.raises(ConfigurationError):
        stage_waveforms(robust_link, stage_index=99)


def test_waveform_of_dead_link_raises():
    import dataclasses

    dead = dataclasses.replace(robust_design(), m1_vth_offset=+0.3)
    link = SRLRLink(dead)
    with pytest.raises(SimulationError):
        stage_waveforms(link, 0)
