"""Fast shape checks for the extension experiment drivers (E16-E22).

The benchmarks exercise these at full size; these tests pin the same
qualitative claims at smaller parameters so plain ``pytest tests/``
covers every experiment driver end to end.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    e16_bypass,
    e17_bus,
    e18_temperature,
    e19_system_studies,
    e20_routing,
    e21_tech_scaling,
    e22_equalized_baseline,
)


def test_e16_bypass_shape():
    result = e16_bypass(rates=(0.05,), measure=150)
    run = result.data["runs"][0]
    assert run["latency_bypass"] < run["latency_base"]
    assert run["buffer_energy_bypass"] <= run["buffer_energy_base"]
    assert "E16" in result.text


def test_e17_bus_shape():
    result = e17_bus(n_bits=4, n_runs=15, n_words=16)
    assert result.data["tt"].ok
    report = result.data["yield"]
    assert report.bus_failure_probability <= report.independence_prediction + 1e-9


def test_e18_temperature_shape():
    result = e18_temperature(temps_c=(0.0, 25.0, 85.0))
    points = {p["temp_c"]: p for p in result.data["points"]}
    assert points[25.0]["adaptive_ok"]
    for p in result.data["points"]:
        assert p["adaptive_errors"] <= p["fixed_errors"]


def test_e19_system_studies_shape():
    result = e19_system_studies(k=6)
    assert result.data["chip"].noc_power_reduction > 0.2
    assert result.data["crossover_locality"] < 0.5
    assert result.data["max_ratio"] == 4


def test_e20_routing_shape():
    result = e20_routing(k=4, rates=(0.3,), n_vcs=8, measure=200)
    run = result.data["runs"][0]
    assert run["o1turn"].average_latency < run["xy"].average_latency * 1.5
    assert run["o1turn"].delivered_count > 0


def test_e21_tech_scaling_shape():
    result = e21_tech_scaling()
    shares = [p["fs_datapath_share"] for p in result.data["points"]]
    assert shares == sorted(shares)
    assert shares[-1] > shares[0] + 0.2


def test_e22_equalized_shape():
    result = e22_equalized_baseline()
    rates = [p["rate"] for p in result.data["points"]]
    assert rates == sorted(rates)
    assert result.data["srlr_rate"] > 3 * max(rates)
    assert result.data["srlr_energy"] < min(p["energy"] for p in result.data["points"])
