"""Fault models: error probabilities, episodes, determinism — and the
vectorized Clopper-Pearson bound they feed."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fault.models import (
    FAULT_MODELS,
    CircuitBer,
    CompositeFault,
    CrosstalkBurst,
    DeadLinks,
    NoFaults,
    SupplyDroop,
    UniformBer,
    circuit_ber,
    flit_error_probability,
    make_fault_model,
)
from repro.mc.ber import ber_upper_bound, ber_upper_bound_many


class TestFlitErrorProbability:
    def test_tiny_ber_stays_exact(self):
        # Naive 1-(1-ber)^n would cancel to 0.0 at this magnitude.
        p = flit_error_probability(1e-15, 64)
        assert p == pytest.approx(64e-15, rel=1e-9)
        assert p > 0.0

    def test_certain_error(self):
        assert flit_error_probability(1.0, 64) == 1.0

    def test_zero_ber(self):
        assert flit_error_probability(0.0, 64) == 0.0

    def test_matches_naive_at_moderate_ber(self):
        p = flit_error_probability(1e-3, 64)
        assert p == pytest.approx(1.0 - (1.0 - 1e-3) ** 64, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            flit_error_probability(-0.1, 64)
        with pytest.raises(ConfigurationError):
            flit_error_probability(1e-3, 0)


class TestModels:
    def test_no_faults_state(self):
        state = NoFaults().make_state("0,0->0,1", 7)
        assert state.flit_error_probability(100, 64) == 0.0
        assert not state.drops(100)

    def test_uniform_ber_state(self):
        state = UniformBer(1e-4).make_state("0,0->0,1", 7)
        expected = flit_error_probability(1e-4, 64)
        assert state.flit_error_probability(0, 64) == expected
        assert state.flit_error_probability(5000, 64) == expected

    def test_uniform_validation(self):
        with pytest.raises(ConfigurationError):
            UniformBer(1.5)

    def test_droop_episodes_elevate_and_are_deterministic(self):
        model = SupplyDroop(
            base_ber=0.0,
            droop_ber=0.5,
            mean_interval_cycles=50.0,
            mean_duration_cycles=20.0,
        )
        probs_a = [
            model.make_state("t", 7).flit_error_probability(c, 64)
            for c in range(2000)
        ]
        probs_b = [
            model.make_state("t", 7).flit_error_probability(c, 64)
            for c in range(2000)
        ]
        assert probs_a == probs_b  # same (seed, token) -> same schedule
        elevated = sum(1 for p in probs_a if p > 0.0)
        assert 0 < elevated < 2000  # episodes happen but don't dominate

    def test_droop_differs_per_link(self):
        model = SupplyDroop(
            base_ber=0.0, droop_ber=0.5,
            mean_interval_cycles=50.0, mean_duration_cycles=20.0,
        )
        a = [model.make_state("a", 7).flit_error_probability(c, 64) for c in range(500)]
        b = [model.make_state("b", 7).flit_error_probability(c, 64) for c in range(500)]
        assert a != b

    def test_burst_combines_with_base(self):
        state = CrosstalkBurst(burst_probability=0.1, base_ber=1e-3).make_state("t", 7)
        p_base = flit_error_probability(1e-3, 64)
        expected = 1.0 - (1.0 - p_base) * 0.9
        assert state.flit_error_probability(0, 64) == pytest.approx(expected)

    def test_dead_garbage_and_drop(self):
        garbage = DeadLinks(victims=("t",), fail_cycle=10).make_state("t", 7)
        assert garbage.flit_error_probability(5, 64) == 0.0
        assert garbage.flit_error_probability(10, 64) == 1.0
        assert not garbage.drops(10)
        drop = DeadLinks(victims=("t",), fail_cycle=10, mode="drop").make_state("t", 7)
        assert drop.flit_error_probability(10, 64) == 0.0
        assert not drop.drops(9)
        assert drop.drops(10)

    def test_dead_unknown_victim_rejected(self):
        with pytest.raises(ConfigurationError):
            DeadLinks(victims=("nope",)).make_states(["a", "b"], 7)

    def test_dead_random_victims_deterministic(self):
        tokens = [f"l{i}" for i in range(10)]
        model = DeadLinks(n_random=3, fail_cycle=0)
        dead_a = {
            t for t, s in model.make_states(tokens, 7).items() if s.drops(0) or
            s.flit_error_probability(0, 64) == 1.0
        }
        dead_b = {
            t for t, s in model.make_states(tokens, 7).items() if s.drops(0) or
            s.flit_error_probability(0, 64) == 1.0
        }
        assert dead_a == dead_b
        assert len(dead_a) == 3
        # A different seed picks a different victim set (overwhelmingly).
        dead_c = {
            t for t, s in model.make_states(tokens, 8).items() if s.drops(0) or
            s.flit_error_probability(0, 64) == 1.0
        }
        assert dead_a != dead_c

    def test_composite_independence(self):
        model = CompositeFault((UniformBer(1e-3), CrosstalkBurst(0.1, 0.0)))
        state = model.make_state("t", 7)
        p1 = flit_error_probability(1e-3, 64)
        expected = 1.0 - (1.0 - p1) * 0.9
        assert state.flit_error_probability(0, 64) == pytest.approx(expected)

    def test_make_fault_model(self):
        for key in FAULT_MODELS:
            model = make_fault_model(key)
            assert model.key.startswith(key) or key == "none"
        with pytest.raises(ConfigurationError):
            make_fault_model("bogus")


class TestCircuitBer:
    def test_nominal_swing_meets_paper_regime(self):
        # The paper claims BER < 1e-9 at the nominal design point.
        assert circuit_ber(0.30) < 1e-9

    def test_lower_swing_is_worse(self):
        assert circuit_ber(0.18) > circuit_ber(0.30)

    def test_bad_corner_is_no_better(self):
        assert circuit_ber(0.20, corner="SS") >= circuit_ber(0.20, corner="FF")

    def test_unknown_corner_rejected(self):
        with pytest.raises(ConfigurationError):
            circuit_ber(0.30, corner="XX")

    def test_model_state_uses_derived_ber(self):
        model = CircuitBer(swing=0.30)
        state = model.make_state("t", 7)
        expected = flit_error_probability(model.ber, 64)
        assert state.flit_error_probability(0, 64) == expected


class TestBerUpperBoundMany:
    """Satellite: vectorized bound must match the scalar exactly."""

    def test_matches_scalar_elementwise(self):
        rng = np.random.default_rng(3)
        transmitted = rng.integers(1, 10_000, size=50)
        errors = (transmitted * rng.random(50) * 0.3).astype(np.int64)
        bounds = ber_upper_bound_many(errors, transmitted)
        for e, t, b in zip(errors, transmitted, bounds):
            assert b == pytest.approx(ber_upper_bound(int(e), int(t)), abs=0.0)

    def test_saturated_entries_are_exactly_one(self):
        bounds = ber_upper_bound_many([5, 0, 3], [5, 10, 3])
        assert bounds[0] == 1.0
        assert bounds[2] == 1.0
        assert bounds[1] == pytest.approx(ber_upper_bound(0, 10))

    def test_zero_errors_rule_of_three(self):
        bound = ber_upper_bound_many([0], [1_000_000])[0]
        assert bound == pytest.approx(-math.log(0.05) / 1_000_000, rel=0.01)

    def test_confidence_passthrough(self):
        a = ber_upper_bound_many([2], [1000], confidence=0.99)[0]
        assert a == pytest.approx(ber_upper_bound(2, 1000, confidence=0.99))

    def test_empty_input(self):
        assert ber_upper_bound_many([], []).shape == (0,)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ber_upper_bound_many([1, 2], [10])
        with pytest.raises(ConfigurationError):
            ber_upper_bound_many([1], [0])
        with pytest.raises(ConfigurationError):
            ber_upper_bound_many([11], [10])
        with pytest.raises(ConfigurationError):
            ber_upper_bound_many([1], [10], confidence=1.0)
