"""Extension subsystems: thermal, chip power, topologies, serialization."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.circuit import (
    SRLRLink,
    max_feasible_ratio,
    robust_design,
    serialization_sweep,
)
from repro.energy import chip_noc_power, compare_chip
from repro.noc import (
    clos_point,
    crossover_locality,
    locality_sweep,
    mesh_average_hops,
    mesh_point,
)
from repro.tech import T_REF, at_temperature, celsius, tech_45nm_soi

TECH = tech_45nm_soi()


# --- thermal ----------------------------------------------------------------------------


def test_temperature_identity_at_reference():
    same = at_temperature(TECH, T_REF)
    assert same.vth_n == pytest.approx(TECH.vth_n)
    assert same.k_drive == pytest.approx(TECH.k_drive)


def test_temperature_physics_directions():
    hot = at_temperature(TECH, celsius(110))
    cold = at_temperature(TECH, celsius(-25))
    assert hot.vth_n < TECH.vth_n < cold.vth_n  # Vth falls with T
    assert hot.k_drive < TECH.k_drive < cold.k_drive  # mobility falls with T
    assert hot.subthreshold_slope_n > TECH.subthreshold_slope_n


def test_celsius_conversion():
    assert celsius(26.85) == pytest.approx(300.0)


def test_temperature_validation():
    with pytest.raises(ConfigurationError):
        at_temperature(TECH, 0.0)


def test_room_temperature_link_unchanged(stress_pattern):
    link = SRLRLink(robust_design(at_temperature(TECH, T_REF)))
    assert link.transmit(stress_pattern, 1.0 / 4.1e9).ok


# --- chip power ------------------------------------------------------------------------


def test_chip_power_scales_with_mesh_size():
    small = chip_noc_power(4, 0.3)
    large = chip_noc_power(8, 0.3)
    assert large.total > small.total
    assert large.total / small.total == pytest.approx(4.0, rel=0.25)


def test_chip_srlr_beats_full_swing():
    cmp = compare_chip(8, 0.3)
    assert cmp.saving_w > 0
    assert cmp.srlr.datapath < cmp.full_swing.datapath
    # Buffers/control are identical between the two datapaths.
    assert cmp.srlr.buffers == pytest.approx(cmp.full_swing.buffers)
    assert cmp.srlr.bias > 0 and cmp.full_swing.bias == 0


def test_chip_budget_share():
    power = chip_noc_power(8, 0.3)
    share = power.share_of_budget(100.0)
    assert 0.0 < share < 0.1
    with pytest.raises(ConfigurationError):
        power.share_of_budget(0.0)


def test_chip_validation():
    with pytest.raises(ConfigurationError):
        chip_noc_power(1)


# --- mesh vs indirect -------------------------------------------------------------------


def test_mesh_hops_interpolate_with_locality():
    full_local = mesh_average_hops(8, 1.0)
    uniform = mesh_average_hops(8, 0.0)
    mixed = mesh_average_hops(8, 0.5)
    assert full_local == pytest.approx(1.0)
    assert uniform == pytest.approx(2 * (8 - 1 / 8) / 3)
    assert full_local < mixed < uniform


def test_clos_cost_is_locality_independent():
    a = clos_point(8, 0.0)
    b = clos_point(8, 0.9)
    assert a.energy_per_bit == pytest.approx(b.energy_per_bit)
    assert a.avg_hops == 2.0


def test_mesh_advantage_grows_with_locality():
    pairs = locality_sweep(8, [0.0, 0.5, 0.9])
    ratios = [c.energy_per_bit / m.energy_per_bit for m, c in pairs]
    assert ratios == sorted(ratios)
    assert ratios[0] > 1.0  # mesh wins even with uniform traffic


def test_crossover_at_zero_for_mesh_scale_dies():
    assert crossover_locality(8) == 0.0


def test_indirect_validation():
    with pytest.raises(ConfigurationError):
        mesh_point(8, 1.5)
    with pytest.raises(ConfigurationError):
        clos_point(1, 0.5)
    with pytest.raises(ConfigurationError):
        locality_sweep(8, [])


# --- serialization ----------------------------------------------------------------------


def test_serialization_ratio_one_is_parallel_datapath():
    point = serialization_sweep([1])[0]
    assert point.feasible
    assert point.n_wires == 64
    assert point.serialization_latency_s == 0.0


def test_serialization_energy_and_area_trade():
    points = serialization_sweep([1, 2, 4])
    assert points[1].energy_per_flit > points[0].energy_per_flit  # SER/DES cost
    areas = [p.repeater_area for p in points]
    assert areas == sorted(areas, reverse=True)  # fewer wires, less repeater area
    assert all(p.feasible for p in points)


def test_serialization_infeasible_beyond_link_speed():
    point = serialization_sweep([16])[0]  # 16 Gb/s per wire: far too fast
    assert not point.feasible


def test_max_feasible_ratio_matches_headline_band():
    # One SRLR wire carries ~4-5 Gb/s; at a 1 GHz flit clock that is 4:1.
    assert max_feasible_ratio() == 4


def test_serialization_validation():
    with pytest.raises(ConfigurationError):
        serialization_sweep([])
    with pytest.raises(ConfigurationError):
        serialization_sweep([3])  # does not divide 64
    with pytest.raises(ConfigurationError):
        serialization_sweep([1], flit_rate=0.0)
