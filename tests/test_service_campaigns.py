"""Adapter parity and the service CLI.

The adapter contract under test: for every campaign kind, submitting
the expansion, executing every task through ``run_task``, and merging
the payloads yields a result **bitwise identical** (via the canonical
JSON serialization the checkpoint layer also relies on) to the
in-process driver run with the same configuration.  Plus: config
validation fails early, expansions are deterministic, and the CLI
round-trips submit -> status -> results.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.analysis.sweep import sweep_grid
from repro.errors import ConfigurationError, ServiceError
from repro.fault.campaign import FaultCampaignConfig, run_fault_campaign
from repro.mc.engine import run_monte_carlo
from repro.service import CampaignDB, DESIGNS, GRID_EVALUATORS, get_adapter
from repro.service.cli import main as cli_main

FAULT_CONFIG = {
    "bers": [1e-3, 1e-2],
    "protocols": ["none", "crc"],
    "k": 2,
    "warmup": 20,
    "measure": 60,
    "seed": 7,
}


def run_campaign(adapter, config):
    """Execute every expanded task in-process and merge — the adapter
    round-trip without the queue (worker integration is tested in
    test_service_workers.py)."""
    payloads = {
        t.key: json.loads(json.dumps(adapter.run_task(config, t.spec)))
        for t in adapter.expand(config)
    }
    return adapter.merge(config, payloads)


def canon(obj) -> str:
    return json.dumps(obj, sort_keys=True)


# --- parity against the in-process drivers --------------------------------------------


def test_monte_carlo_parity():
    adapter = get_adapter("monte_carlo")
    config = adapter.canonical_config(
        {"design": "robust", "n_runs": 8, "base_seed": 99, "block_size": 3}
    )
    merged = run_campaign(adapter, config)
    reference = run_monte_carlo(DESIGNS["robust"](), n_runs=8, base_seed=99)
    assert canon([asdict(r) for r in merged.runs]) == canon(
        [asdict(r) for r in reference.runs]
    )


def test_sweep_grid_parity():
    adapter = get_adapter("sweep_grid")
    parameters = {"x": [0.0, 1.0, 2.0], "y": [1.5, 2.5]}
    config = adapter.canonical_config(
        {"parameters": parameters, "evaluator": "poly"}
    )
    merged = run_campaign(adapter, config)
    reference = sweep_grid(parameters, GRID_EVALUATORS["poly"])
    assert merged.parameters == reference.parameters
    assert canon(merged.points) == canon(reference.points)
    assert canon(merged.metrics) == canon(reference.metrics)


def test_fault_campaign_parity():
    adapter = get_adapter("fault")
    config = adapter.canonical_config(FAULT_CONFIG)
    merged = run_campaign(adapter, config)
    reference = run_fault_campaign(adapter._config(config))
    assert canon([asdict(p) for p in merged.points]) == canon(
        [asdict(p) for p in reference.points]
    )


def test_dse_batch_merges_in_submission_order():
    adapter = get_adapter("dse_batch")
    config = adapter.canonical_config(
        {
            "evaluator": "zdt1",
            "evaluator_kwargs": {"dimension": 2},
            "candidates": [{"x0": 0.1, "x1": 0.2}, {"x0": 0.9, "x1": 0.4}],
            "base_seed": 5,
        }
    )
    result = run_campaign(adapter, config)
    assert [r.params for r in result.records] == config["candidates"]
    assert result.n_feasible == 2
    assert result.records[0].metrics["f1"] == pytest.approx(0.1)


def test_merge_refuses_partial_payloads():
    adapter = get_adapter("sweep_grid")
    config = adapter.canonical_config(
        {"parameters": {"x": [0.0, 1.0]}, "evaluator": "poly"}
    )
    tasks = adapter.expand(config)
    payloads = {tasks[0].key: adapter.run_task(config, tasks[0].spec)}
    with pytest.raises(ServiceError, match="incomplete"):
        adapter.merge(config, payloads)


# --- canonicalization and validation --------------------------------------------------


def test_canonical_config_fills_defaults_deterministically():
    adapter = get_adapter("monte_carlo")
    a = adapter.canonical_config({"n_runs": 4})
    b = adapter.canonical_config({"n_runs": 4, "design": "robust"})
    assert canon(a) == canon(b)  # defaults == spelled-out defaults
    assert a["pattern"]  # the paper's stress pattern, made explicit


def test_expansion_is_deterministic():
    adapter = get_adapter("fault")
    config = adapter.canonical_config(FAULT_CONFIG)
    assert adapter.expand(config) == adapter.expand(config)


@pytest.mark.parametrize(
    "kind, bad",
    [
        ("monte_carlo", {"design": "nope"}),
        ("monte_carlo", {"n_runs": 0}),
        ("monte_carlo", {"block_size": 0}),
        ("sweep_grid", {"parameters": {"x": [1.0]}, "evaluator": "nope"}),
        ("sweep_grid", {"parameters": {}, "evaluator": "poly"}),
        ("dse_batch", {"evaluator": "nope", "candidates": [{"x0": 0.1}]}),
        ("dse_batch", {"evaluator": "zdt1", "candidates": []}),
    ],
)
def test_invalid_configs_fail_at_submit_time(kind, bad):
    with pytest.raises(ConfigurationError):
        get_adapter(kind).canonical_config(bad)


def test_unknown_kind_raises():
    with pytest.raises(ServiceError, match="unknown campaign kind"):
        get_adapter("nope")


# --- the CLI --------------------------------------------------------------------------


@pytest.fixture()
def cli_db(tmp_path):
    return str(tmp_path / "svc.sqlite")


def cli(db, *argv):
    return cli_main(["--db", db, *argv])


def test_cli_submit_status_results(cli_db, tmp_path, capsys):
    grid = {"parameters": {"x": [0.0, 3.0]}, "evaluator": "poly"}
    assert cli(cli_db, "submit", "--name", "g", "--kind", "sweep_grid",
               "--config", json.dumps(grid)) == 0
    out = capsys.readouterr().out
    assert "created campaign 'g'" in out and "2 tasks" in out

    # Resubmit: idempotent attach, not an error.
    assert cli(cli_db, "submit", "--name", "g", "--kind", "sweep_grid",
               "--config", json.dumps(grid)) == 0
    assert "attached to campaign 'g'" in capsys.readouterr().out

    # Incomplete: results exits 1 and says what's missing.
    assert cli(cli_db, "results", "--name", "g") == 1
    assert "incomplete: 0/2" in capsys.readouterr().err

    # Drain it in-process, then results merges and summarizes.
    from repro.service import run_worker

    run_worker(cli_db, worker_id="w0", drain=True, lease_seconds=30.0)
    assert cli(cli_db, "results", "--name", "g") == 0
    assert "2 grid cells over x" in capsys.readouterr().out

    assert cli(cli_db, "status") == 0
    out = capsys.readouterr().out
    assert "COMPLETE" in out
    assert "w0" in out  # worker heartbeat row

    # A config file (not inline JSON) also works.
    cfg_file = tmp_path / "grid.json"
    cfg_file.write_text(json.dumps({"parameters": {"x": [5.0]},
                                    "evaluator": "poly"}))
    assert cli(cli_db, "submit", "--name", "g2", "--kind", "sweep_grid",
               "--config", str(cfg_file)) == 0


def test_cli_mismatched_resubmit_is_an_error_not_a_traceback(cli_db, capsys):
    grid = {"parameters": {"x": [0.0]}, "evaluator": "poly"}
    assert cli(cli_db, "submit", "--name", "g", "--kind", "sweep_grid",
               "--config", json.dumps(grid)) == 0
    capsys.readouterr()
    changed = {"parameters": {"x": [1.0]}, "evaluator": "poly"}
    assert cli(cli_db, "submit", "--name", "g", "--kind", "sweep_grid",
               "--config", json.dumps(changed)) == 2
    assert "refusing to attach" in capsys.readouterr().err


def test_cli_retry_failed_and_status_cache(cli_db, tmp_path, capsys):
    grid = {"parameters": {"x": [0.0]}, "evaluator": "poly"}
    assert cli(cli_db, "submit", "--name", "g", "--kind", "sweep_grid",
               "--config", json.dumps(grid)) == 0
    # Park the row as failed directly, then requeue it via the CLI.
    with CampaignDB(cli_db) as db:
        [task] = db.lease("w0", now=100.0)
        db.fail("w0", task.campaign_id, task.task_key, "boom", max_attempts=1)
    capsys.readouterr()
    assert cli(cli_db, "retry-failed", "--name", "g") == 0
    assert "requeued 1 failed task" in capsys.readouterr().out

    # status --cache shows on-disk ResultCache stats.
    cache_dir = tmp_path / "cache"
    assert cli(cli_db, "status", "--cache", str(cache_dir)) == 0
    assert "0 entries" in capsys.readouterr().out


def test_cli_status_surfaces_put_errors(cli_db, capsys):
    with CampaignDB(cli_db) as db:
        db.record_worker("w0", cache_put_errors=3)
    assert cli(cli_db, "status") == 0
    out = capsys.readouterr().out
    assert "3 failed cache write(s)" in out
