"""INV amplifier, output drivers, and the bias / adaptive-swing scheme."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.circuit import (
    AdaptiveSwingReference,
    CurrentStarvedInverter,
    FixedSwingReference,
    InverterDriver,
    NMOSDriver,
    OgueyCurrentReference,
    adaptive_for_amplitude,
    fixed_for_amplitude,
)
from repro.circuit.bias import BIAS_GENERATOR_POWER
from repro.tech import GlobalCorner, corner_sample, tech_45nm_soi
from repro.units import UW

TECH = tech_45nm_soi()
INV = CurrentStarvedInverter()


# --- INV amplifier ---------------------------------------------------------------------


def test_switching_threshold_midrange(nominal):
    vm = INV.switching_threshold(nominal, "s0")
    assert 0.3 < vm < 0.5


def test_threshold_moves_with_corners(nominal):
    vm_tt = INV.switching_threshold(nominal, "s0")
    # Strong PMOS (low |vth_p|) pulls the threshold up.
    strong_p = corner_sample(TECH, GlobalCorner("x", 0.0, -0.06))
    assert INV.switching_threshold(strong_p, "s0") > vm_tt


def test_rise_fall_times_positive_and_corner_sensitive(nominal):
    tr = INV.intrinsic_rise(nominal, "s0")
    tf = INV.fall_time(nominal, "s0")
    assert tr > 0 and tf > 0
    weak_p = corner_sample(TECH, GlobalCorner("x", 0.0, 0.06))
    assert INV.intrinsic_rise(weak_p, "s0") > tr
    assert INV.fall_time(weak_p, "s0") == pytest.approx(tf, rel=1e-6)


def test_starving_slows_edges(nominal):
    starved = CurrentStarvedInverter(starve_factor=5.0)
    assert starved.intrinsic_rise(nominal, "s0") > INV.intrinsic_rise(nominal, "s0")


def test_invalid_inverter_rejected():
    with pytest.raises(ConfigurationError):
        CurrentStarvedInverter(width_n=-1.0)


# --- drivers ----------------------------------------------------------------------------


def test_nmos_driver_clamps_at_vref_minus_vth(nominal):
    drv = NMOSDriver()
    launch = drv.launch(nominal, "d0", vref=0.70)
    assert launch.amplitude == pytest.approx(0.70 - TECH.vth_n)


def test_nmos_driver_clamps_vref_at_vdd(nominal):
    drv = NMOSDriver()
    launch = drv.launch(nominal, "d0", vref=1.5)
    assert launch.amplitude == pytest.approx(TECH.vdd - TECH.vth_n)


def test_nmos_driver_amplitude_falls_with_weak_nmos():
    drv = NMOSDriver()
    weak = corner_sample(TECH, GlobalCorner("SS", 0.06, 0.0))
    strong = corner_sample(TECH, GlobalCorner("FF", -0.06, 0.0))
    a_weak = drv.launch(weak, "d0", 0.70).amplitude
    a_strong = drv.launch(strong, "d0", 0.70).amplitude
    assert a_weak < a_strong


def test_nmos_driver_insensitive_to_pmos_corner(nominal):
    drv = NMOSDriver()
    base = drv.launch(nominal, "d0", 0.70)
    shifted = drv.launch(
        corner_sample(TECH, GlobalCorner("x", 0.0, 0.09)), "d0", 0.70
    )
    assert shifted.amplitude == pytest.approx(base.amplitude)
    assert shifted.r_up == pytest.approx(base.r_up)
    assert shifted.r_down == pytest.approx(base.r_down)


def test_inverter_driver_full_rail_and_pmos_sensitivity(nominal):
    drv = InverterDriver()
    base = drv.launch(nominal, "d0", vref=0.0)  # vref ignored
    assert base.amplitude == pytest.approx(TECH.vdd)
    weak_p = corner_sample(TECH, GlobalCorner("x", 0.0, 0.06))
    assert drv.launch(weak_p, "d0", 0.0).r_up > base.r_up
    weak_n = corner_sample(TECH, GlobalCorner("x", 0.06, 0.0))
    assert drv.launch(weak_n, "d0", 0.0).r_down > base.r_down


def test_driver_gate_capacitances_positive(nominal):
    assert NMOSDriver().gate_capacitance(nominal) > 0
    assert InverterDriver().gate_capacitance(nominal) > 0


def test_invalid_driver_args(nominal):
    with pytest.raises(ConfigurationError):
        NMOSDriver(width_up=-1.0)
    with pytest.raises(ConfigurationError):
        InverterDriver(amplitude_fraction=0.0)
    with pytest.raises(ConfigurationError):
        NMOSDriver().launch(nominal, "d0", vref=0.0)


# --- bias / swing references -----------------------------------------------------------


def test_oguey_current_near_constant():
    ref = OgueyCurrentReference()
    tt = corner_sample(TECH, GlobalCorner("TT", 0.0, 0.0))
    ss = corner_sample(TECH, GlobalCorner("SS", 0.09, 0.09))
    i_tt, i_ss = ref.current(tt), ref.current(ss)
    assert abs(i_ss - i_tt) / i_tt < 0.1  # threshold-free to first order


def test_fixed_reference_is_constant(nominal):
    ref = FixedSwingReference(0.70)
    ss = corner_sample(TECH, GlobalCorner("SS", 0.09, 0.09))
    assert ref.vref(nominal) == ref.vref(ss) == pytest.approx(0.70)
    assert ref.power == 0.0


def test_adaptive_reference_tracks_m1_threshold(nominal):
    ref = adaptive_for_amplitude(TECH, 0.40)
    v_tt = ref.vref(nominal)
    weak = corner_sample(TECH, GlobalCorner("SS", 0.05, 0.0))
    strong = corner_sample(TECH, GlobalCorner("FF", -0.05, 0.0))
    assert ref.vref(weak) > v_tt  # boost swing at weak corner
    assert ref.vref(strong) <= v_tt  # trim at strong corner...
    assert ref.vref(strong) >= v_tt - ref.trim_limit - 1e-12  # ...but bounded


def test_adaptive_reference_delivers_target_at_tt(nominal):
    amplitude = 0.42
    ref = adaptive_for_amplitude(TECH, amplitude)
    drv = NMOSDriver()
    launch = drv.launch(nominal, "d0", ref.vref(nominal))
    assert launch.amplitude == pytest.approx(amplitude, abs=1e-6)


def test_adaptive_reference_power_is_paper_value():
    ref = adaptive_for_amplitude(TECH, 0.40)
    assert ref.power == pytest.approx(587 * UW)
    assert BIAS_GENERATOR_POWER == pytest.approx(587e-6)


def test_fixed_for_amplitude_matches_nmos_clamp(nominal):
    ref = fixed_for_amplitude(TECH, 0.38)
    launch = NMOSDriver().launch(nominal, "d0", ref.vref(nominal))
    assert launch.amplitude == pytest.approx(0.38, abs=1e-6)


def test_invalid_swing_targets():
    with pytest.raises(ConfigurationError):
        fixed_for_amplitude(TECH, -0.1)
    with pytest.raises(ConfigurationError):
        adaptive_for_amplitude(TECH, 0.0)
    with pytest.raises(ConfigurationError):
        FixedSwingReference(0.0)
    with pytest.raises(ConfigurationError):
        AdaptiveSwingReference(overdrive=0.1, gain=-1.0)
