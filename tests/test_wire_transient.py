"""Exact RC transient solver: checked against closed-form circuit theory."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tech import tech_45nm_soi
from repro.units import MM, PS
from repro.wire import (
    LadderNetwork,
    TransientSolver,
    build_ladder,
    reference_segment,
)

TECH = tech_45nm_soi()


def single_rc(r: float, c: float) -> TransientSolver:
    """A one-node RC network (driver resistance r into capacitance c)."""
    net = LadderNetwork(
        c=np.array([c]), g=np.array([[1.0 / r]]), b=np.array([1.0 / r])
    )
    return TransientSolver(net)


def test_single_rc_matches_textbook():
    r, c = 1000.0, 100e-15
    solver = single_rc(r, c)
    tau = r * c
    times = np.array([0.0, tau, 2 * tau, 5 * tau])
    v = solver.step_response(times, amplitude=1.0)[:, 0]
    expected = 1.0 - np.exp(-times / tau)
    assert v == pytest.approx(expected, abs=1e-9)


def test_slowest_time_constant_single_rc():
    solver = single_rc(2000.0, 50e-15)
    assert solver.slowest_time_constant == pytest.approx(1e-10, rel=1e-9)


def test_steady_state_is_input_level(segment_1mm):
    solver = TransientSolver(build_ladder(segment_1mm, r_drive=200.0))
    v_ss = solver.steady_state(0.7)
    # A resistive ladder with no DC path to ground settles at the input.
    assert v_ss == pytest.approx(np.full_like(v_ss, 0.7), abs=1e-9)


def test_step_response_monotone_and_bounded(segment_1mm):
    solver = TransientSolver(build_ladder(segment_1mm, r_drive=200.0))
    times = np.linspace(0, 10 * solver.slowest_time_constant, 400)
    far = solver.step_response(times)[:, -1]
    assert np.all(np.diff(far) >= -1e-9)  # monotone rise
    assert np.all(far <= 1.0 + 1e-9)  # passive: never exceeds the drive
    assert far[-1] == pytest.approx(1.0, abs=1e-3)


def test_near_end_leads_far_end(segment_1mm):
    solver = TransientSolver(build_ladder(segment_1mm, r_drive=200.0))
    times = np.linspace(1 * PS, 3 * solver.slowest_time_constant, 200)
    v = solver.step_response(times)
    assert np.all(v[:, 0] >= v[:, -1] - 1e-12)


def test_pulse_response_superposition(segment_1mm):
    solver = TransientSolver(build_ladder(segment_1mm, r_drive=300.0))
    width = 100 * PS
    times = np.linspace(0, 600 * PS, 300)
    pulse = solver.pulse_response(times, width, 1.0)
    step = solver.step_response(times, 1.0)
    shifted = np.zeros_like(step)
    mask = times >= width
    shifted[mask] = solver.step_response(times[mask] - width, 1.0)
    assert pulse == pytest.approx(step - shifted, abs=1e-9)


def test_pulse_returns_to_zero(segment_1mm):
    solver = TransientSolver(build_ladder(segment_1mm, r_drive=300.0))
    t_end = 12 * solver.slowest_time_constant
    v = solver.pulse_response(np.array([t_end]), 100 * PS, 1.0)
    assert np.abs(v).max() < 1e-3


def test_evolve_continuity(segment_1mm):
    solver = TransientSolver(build_ladder(segment_1mm, r_drive=300.0))
    # Evolving 2t in one go equals two successive t evolutions.
    v0 = np.zeros(solver.network.n_nodes)
    t = 80 * PS
    one_shot = solver.evolve(v0, 0.5, np.array([2 * t]))[0]
    mid = solver.evolve(v0, 0.5, np.array([t]))[0]
    two_step = solver.evolve(mid, 0.5, np.array([t]))[0]
    assert one_shot == pytest.approx(two_step, abs=1e-12)


def test_simulate_piecewise_tracks_levels(segment_1mm):
    solver = TransientSolver(build_ladder(segment_1mm, r_drive=300.0))
    tau = solver.slowest_time_constant
    times, v = solver.simulate_piecewise(
        [(0.0, 1.0), (8 * tau, 0.0)], t_end=20 * tau, n_samples=200
    )
    far = v[:, -1]
    i_high = np.searchsorted(times, 7.9 * tau)
    assert far[i_high] == pytest.approx(1.0, abs=5e-3)
    assert far[-1] == pytest.approx(0.0, abs=5e-3)


def test_piecewise_validation(segment_1mm):
    solver = TransientSolver(build_ladder(segment_1mm, r_drive=300.0))
    with pytest.raises(ConfigurationError):
        solver.simulate_piecewise([], t_end=1e-9)
    with pytest.raises(ConfigurationError):
        solver.simulate_piecewise([(1e-12, 1.0)], t_end=1e-9)
    with pytest.raises(ConfigurationError):
        solver.simulate_piecewise([(0.0, 1.0), (0.0, 0.0)], t_end=1e-9)


def test_ladder_validation(segment_1mm):
    with pytest.raises(ConfigurationError):
        build_ladder(segment_1mm, r_drive=0.0)
    with pytest.raises(ConfigurationError):
        build_ladder(segment_1mm, r_drive=100.0, c_load=-1e-15)
    with pytest.raises(ConfigurationError):
        build_ladder(segment_1mm, r_drive=100.0, n_sections=0)


def test_ladder_conserves_totals(segment_1mm):
    net = build_ladder(segment_1mm, r_drive=100.0, c_load=2e-15, n_sections=17)
    assert net.c.sum() == pytest.approx(segment_1mm.capacitance + 2e-15)
    # Sum of series conductances: n_sections * (n_sections / R_total).
    assert net.far_node == 17


@settings(max_examples=25, deadline=None)
@given(
    r_drive=st.floats(50.0, 5000.0),
    width_ps=st.floats(20.0, 400.0),
)
def test_response_passivity_property(r_drive, width_ps):
    """No internal node ever exceeds the drive amplitude (passivity)."""
    segment = reference_segment(TECH, 1 * MM)
    solver = TransientSolver(build_ladder(segment, r_drive))
    times = np.linspace(0, 6 * solver.slowest_time_constant, 200)
    v = solver.pulse_response(times, width_ps * PS, 1.0)
    assert v.max() <= 1.0 + 1e-9
    assert v.min() >= -1e-9
