"""Integration: the paper's headline claims end to end.

These are the reproduction acceptance tests: each asserts one of the
paper's reported results within the tolerance appropriate for a
behavioral model (shapes and factors, not silicon-exact numbers).
"""

from __future__ import annotations

import pytest

from repro.circuit import SRLRLink, robust_design
from repro.energy import (
    RouterPowerModel,
    bias_overhead,
    full_swing_link_energy,
    srlr_link_energy,
)
from repro.mc import (
    default_stress_pattern,
    immunity_ratio,
    measure_ber,
    run_monte_carlo,
)
from repro.mc.yield_analysis import design_variants
from repro.noc import NocSimulator, price_stats
from repro.units import GBPS, MW


pytestmark = pytest.mark.integration


def test_headline_40fj_per_bit_per_mm():
    report = srlr_link_energy()
    assert report.fj_per_bit_per_mm == pytest.approx(40.4, rel=0.12)


def test_headline_link_power_1_66mw():
    report = srlr_link_energy()
    assert report.power / MW == pytest.approx(1.66, rel=0.12)


def test_headline_bandwidth_density_exact():
    report = srlr_link_energy()
    assert report.bandwidth_density_gbps_per_um == pytest.approx(6.83, rel=1e-3)


def test_headline_max_data_rate_band(robust_link, stress_pattern):
    rate = robust_link.max_data_rate(stress_pattern)
    # The behavioral link tops out in the same band as the 4.1 Gb/s chip.
    assert 4.1 <= rate / GBPS <= 5.5


def test_headline_ber_clean_at_rated_speed(robust_link):
    m = measure_ber(robust_link, 1.0 / 4.1e9, n_bits=20_000, noise_sigma=0.004)
    assert m.errors == 0


def test_low_swing_saves_versus_full_swing():
    saving = (
        full_swing_link_energy().fj_per_bit_per_mm
        / srlr_link_energy().fj_per_bit_per_mm
    )
    assert saving > 2.0


def test_monte_carlo_immunity_ratio_near_3_7():
    variants = design_variants()
    robust = run_monte_carlo(variants["robust"], n_runs=200)
    straightforward = run_monte_carlo(variants["straightforward"], n_runs=200)
    ratio = immunity_ratio(straightforward, robust)
    # Paper: "about 3.7 times"; we accept the same order with margin.
    assert 2.0 <= ratio <= 8.0
    assert robust.error_probability < straightforward.error_probability


def test_bias_share_0_6_percent():
    assert bias_overhead(64).fraction == pytest.approx(0.006, abs=0.003)


def test_router_power_split():
    p = RouterPowerModel().power_breakdown(1.0, "srlr")
    assert p.buffers / MW == pytest.approx(38.8, rel=0.1)
    assert p.control / MW == pytest.approx(5.2, rel=0.1)
    assert p.datapath / MW == pytest.approx(12.9, rel=0.1)


def test_router_area_18_percent():
    area = RouterPowerModel().area_breakdown()
    assert area.datapath * 1e6 == pytest.approx(0.061, rel=0.02)
    assert area.datapath_fraction == pytest.approx(0.18, abs=0.03)


def test_srlr_datapath_saves_in_a_running_noc():
    sim = NocSimulator(4, injection_rate=0.15, seed=17)
    stats = sim.run(warmup=100, measure=300)
    srlr = price_stats(stats, datapath="srlr")
    fs = price_stats(stats, datapath="full_swing")
    assert fs.datapath / srlr.datapath > 2.0
    assert fs.total > srlr.total


def test_ten_stage_link_matches_mesh_distances():
    # The SRLR insertion length equals the router-to-router distance, so a
    # 10 mm link is exactly 10 mesh hops worth of wire.
    design = robust_design()
    assert design.n_stages == 10
    assert design.segment_length == pytest.approx(1e-3)
    assert design.total_length == pytest.approx(10e-3)
    link = SRLRLink(design)
    records = link.propagate_pulse()
    assert all(r.fired for r in records)
