"""Golden-regression layer: pin the paper's headline reproductions.

These tests lock the *currently produced* numbers — the values published
in README.md / EXPERIMENTS.md — with explicit tolerances, so performance
work (the parallel runtime, future vectorization) cannot silently drift
the physics.  The tolerance policy (see ``docs/GOLDEN_TESTS.md``):

* **exact** (``rel=1e-12``) — deterministic analytic quantities (energy
  integrals, bandwidth density, bisection-found max rate) and seeded
  Monte Carlo aggregates.  Any change means the computation changed, and
  the golden value must be *consciously* re-pinned in the same commit.
* **paper band** — looser checks that the reproduction stays inside the
  tolerance stated against the paper's silicon numbers; these survive
  re-calibration, the exact pins do not.

If a deliberate physics change moves a golden number: update the pinned
constant here, re-run ``scripts/generate_experiments_md.py``, and say so
in the commit message.  Never widen a tolerance to make CI pass.
"""

from __future__ import annotations

import pytest

from repro.circuit import SRLRLink, robust_design
from repro.energy import srlr_link_energy, table1_designs
from repro.mc import default_stress_pattern, design_variants, immunity_ratio, run_monte_carlo
from repro.units import GBPS, MW

EXACT = 1e-12

# --- pinned golden values (re-pin consciously; see module docstring) -------------------

GOLDEN_FJ_PER_BIT_PER_MM = 38.79802474074869
GOLDEN_FJ_PER_BIT_PER_CM = 387.9802474074869
GOLDEN_BW_DENSITY_GBPS_PER_UM = 6.833333333333333
GOLDEN_MAX_RATE_GBPS = 4.947265625
GOLDEN_LINK_POWER_MW = 1.5907190143706964

#: 120-die Monte Carlo at base_seed=2013 (the default stream): exact.
GOLDEN_MC_DIES = 120
GOLDEN_P_ERR_ROBUST = 0.15
GOLDEN_P_ERR_STRAIGHTFORWARD = 0.49166666666666664
GOLDEN_IMMUNITY_RATIO = 3.2777777777777777


@pytest.fixture(scope="module")
def energy_report():
    return srlr_link_energy()


# --- E5: headline link metrics ---------------------------------------------------------


def test_golden_link_energy_per_bit_per_mm(energy_report):
    assert energy_report.fj_per_bit_per_mm == pytest.approx(
        GOLDEN_FJ_PER_BIT_PER_MM, rel=EXACT
    )
    assert energy_report.fj_per_bit_per_cm == pytest.approx(
        GOLDEN_FJ_PER_BIT_PER_CM, rel=EXACT
    )


def test_golden_link_energy_in_paper_band(energy_report):
    # Paper silicon: 40.4 fJ/bit/mm.  The model is documented to sit
    # within 10% of it; drifting outside that band is a physics change.
    assert energy_report.fj_per_bit_per_mm == pytest.approx(40.4, rel=0.10)


def test_golden_bandwidth_density(energy_report):
    assert energy_report.bandwidth_density_gbps_per_um == pytest.approx(
        GOLDEN_BW_DENSITY_GBPS_PER_UM, rel=EXACT
    )
    # Paper: 6.83 Gb/s/um (the pitch calibration anchor — near-exact).
    assert energy_report.bandwidth_density_gbps_per_um == pytest.approx(6.83, rel=0.01)


def test_golden_link_power(energy_report):
    assert energy_report.power / MW == pytest.approx(GOLDEN_LINK_POWER_MW, rel=EXACT)
    assert energy_report.power / MW == pytest.approx(1.66, rel=0.10)  # paper band


def test_golden_max_data_rate(robust_link):
    rate = robust_link.max_data_rate(default_stress_pattern())
    assert rate / GBPS == pytest.approx(GOLDEN_MAX_RATE_GBPS, rel=EXACT)
    # Documented band: at least the paper's 4.1 Gb/s, at most ~25% over
    # (the model's known calibration slack, see EXPERIMENTS.md).
    assert 4.1 <= rate / GBPS <= 4.1 * 1.25


# --- E4/E12: Monte Carlo immunity ------------------------------------------------------


@pytest.fixture(scope="module")
def golden_mc():
    variants = design_variants()
    return (
        run_monte_carlo(variants["robust"], n_runs=GOLDEN_MC_DIES),
        run_monte_carlo(variants["straightforward"], n_runs=GOLDEN_MC_DIES),
    )


def test_golden_mc_error_probabilities(golden_mc):
    robust, straightforward = golden_mc
    assert robust.error_probability == pytest.approx(GOLDEN_P_ERR_ROBUST, rel=EXACT)
    assert straightforward.error_probability == pytest.approx(
        GOLDEN_P_ERR_STRAIGHTFORWARD, rel=EXACT
    )


def test_golden_immunity_ratio(golden_mc):
    robust, straightforward = golden_mc
    ratio = immunity_ratio(straightforward, robust)
    assert float(ratio) == pytest.approx(GOLDEN_IMMUNITY_RATIO, rel=EXACT)
    assert not ratio.is_lower_bound
    # Paper band: "~3.7x"; the reproduction is documented at 3.3-3.5x
    # depending on die count.  Stay within the qualitative claim.
    assert 2.0 <= float(ratio) <= 8.0


def test_golden_mc_parallel_path_hits_same_goldens(golden_mc):
    # The golden values are n_jobs-independent by construction; pin it.
    variants = design_variants()
    parallel = run_monte_carlo(variants["robust"], n_runs=GOLDEN_MC_DIES, n_jobs=2)
    assert parallel.error_probability == pytest.approx(GOLDEN_P_ERR_ROBUST, rel=EXACT)
    assert parallel.runs == golden_mc[0].runs


# --- E6/E7: Fig. 8 placement and Table I ordering --------------------------------------


def test_golden_table1_ordering(energy_report):
    designs = table1_designs()
    ours_density = energy_report.bandwidth_density_gbps_per_um
    ours_energy = energy_report.fj_per_bit_per_cm
    others = [d for d in designs if d.key != "this_work"]
    # Fig. 8 minima: this work holds the highest bandwidth density
    # outright, and the lowest energy among the >4 Gb/s/um designs.
    assert all(ours_density > d.bandwidth_density_gbps_per_um for d in others)
    assert all(
        ours_energy < d.energy_fj_per_bit_per_cm
        for d in others
        if d.bandwidth_density_gbps_per_um > 4.0
    )
    # Pareto frontier membership: nobody dominates this work.
    assert not any(
        d.bandwidth_density_gbps_per_um >= ours_density
        and d.energy_fj_per_bit_per_cm <= ours_energy
        for d in others
    )


def test_golden_table1_published_rows_untouched():
    # The published competitor rows are constants from the paper's
    # Table I; any edit to them is a data error, not a model change.
    expected = {
        "mensink2010": (1.163, 340.0),
        "kim2010_4g": (2.0, 370.0),
        "kim2010_6g": (3.0, 630.0),
        "seo2010": (4.375, 680.0),
        "park2012": (6.0, 561.0),
        "this_work": (6.83, 404.0),
    }
    designs = {d.key: d for d in table1_designs()}
    assert set(designs) == set(expected)
    for key, (density, energy) in expected.items():
        assert designs[key].bandwidth_density_gbps_per_um == pytest.approx(
            density, rel=1e-9
        )
        assert designs[key].energy_fj_per_bit_per_cm == pytest.approx(energy, rel=1e-9)
